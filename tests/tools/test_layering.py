"""The import-layering lint must pass on the real tree and catch breaks."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
CHECKER_PATH = REPO_ROOT / "tools" / "check_layering.py"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_layering", CHECKER_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_real_tree_is_layered(checker):
    """The shipped source tree must have zero layering violations."""
    violations = checker.check_tree(REPO_ROOT / "src")
    assert violations == [], "\n".join(violations)


def test_cli_entry_point_passes(checker, capsys):
    assert checker.main(["--root", str(REPO_ROOT / "src")]) == 0
    assert "layering OK" in capsys.readouterr().out


def test_core_importing_eval_is_flagged(checker, tmp_path):
    """A repro.core module importing repro.eval must fail the lint."""
    package = tmp_path / "repro"
    for sub in ("core", "eval"):
        (package / sub).mkdir(parents=True)
        (package / sub / "__init__.py").write_text("")
    (package / "__init__.py").write_text("")
    (package / "core" / "bad.py").write_text(
        "from repro.eval.experiments import run_model\n"
    )
    violations = checker.check_tree(tmp_path)
    assert len(violations) == 1
    assert "repro.core.bad imports repro.eval.experiments" in violations[0]
    assert checker.main(["--root", str(tmp_path)]) == 1


def test_relative_imports_are_resolved(checker, tmp_path):
    """`from ..cli import x` inside repro.core resolves and is flagged."""
    package = tmp_path / "repro"
    (package / "core").mkdir(parents=True)
    (package / "__init__.py").write_text("")
    (package / "cli.py").write_text("")
    (package / "core" / "__init__.py").write_text("")
    (package / "core" / "sneaky.py").write_text("from ..cli import main\n")
    violations = checker.check_tree(tmp_path)
    assert len(violations) == 1
    assert "repro.core.sneaky imports repro.cli" in violations[0]


def test_missing_package_root_errors(checker, tmp_path):
    assert checker.main(["--root", str(tmp_path)]) == 2


def test_clean_tree_passes(checker, tmp_path):
    package = tmp_path / "repro"
    (package / "core").mkdir(parents=True)
    (package / "__init__.py").write_text("")
    (package / "core" / "__init__.py").write_text("")
    (package / "core" / "fine.py").write_text(
        "import numpy as np\nfrom repro.core import fine  # self import ok\n"
    )
    assert checker.check_tree(tmp_path) == []
