"""Tests for the fault-injection harness itself (repro.testing.faults)."""

import os

import numpy as np
import pytest

from repro.testing.faults import (
    FaultInjectionError,
    flip_bit,
    poison_slab,
    transient_io_errors,
    truncate_file,
)

pytestmark = pytest.mark.faults


class TestTransientIOErrors:
    def test_fails_then_recovers(self, tmp_path):
        target = tmp_path / "victim.txt"
        source = tmp_path / "src.txt"
        with transient_io_errors(2, targets=("replace",)) as stats:
            for attempt in range(4):
                source.write_text(f"attempt {attempt}")
                try:
                    os.replace(source, target)
                except FaultInjectionError:
                    continue
                break
        assert stats["injected"] == 2
        assert target.read_text() == "attempt 2"

    def test_path_substring_filters(self, tmp_path):
        a, b = tmp_path / "keep.txt", tmp_path / "fail.txt"
        with transient_io_errors(10, targets=("replace",), path_substring="fail") as stats:
            src = tmp_path / "s"
            src.write_text("x")
            os.replace(src, a)  # unmatched: passes through
            src.write_text("y")
            with pytest.raises(FaultInjectionError):
                os.replace(src, b)
        # os.replace matches on its *source* argument too; here only the
        # matched destination call was sabotaged.
        assert stats["injected"] == 1
        assert a.read_text() == "x"

    def test_open_target_only_fails_writes(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("before")
        with transient_io_errors(10, targets=("open",), path_substring="data.txt"):
            assert path.read_text() == "before"  # reads untouched
            with pytest.raises(FaultInjectionError):
                path.write_text("after")
        path.write_text("after")  # restored on exit
        assert path.read_text() == "after"

    def test_restores_patched_functions(self):
        original_replace = os.replace
        with transient_io_errors(1, targets=("replace", "fsync")):
            assert os.replace is not original_replace
        assert os.replace is original_replace

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown fault targets"):
            with transient_io_errors(1, targets=("unlink",)):
                pass

    def test_injected_error_is_oserror(self):
        # Production retry loops catch OSError; the injected type must
        # be caught by them without special-casing.
        assert issubclass(FaultInjectionError, OSError)


class TestFileCorruption:
    def test_truncate_drops_tail(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"0123456789abcdef" * 4)
        truncate_file(path, drop_bytes=16)
        assert path.stat().st_size == 48

    def test_truncate_refuses_tiny_files(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"abc")
        with pytest.raises(ValueError, match="cannot drop"):
            truncate_file(path, drop_bytes=16)

    def test_flip_bit_changes_exactly_one_bit(self, tmp_path):
        path = tmp_path / "f.bin"
        payload = bytes(range(64))
        path.write_bytes(payload)
        flip_bit(path, offset=10, bit=3)
        mutated = path.read_bytes()
        assert mutated != payload
        diff = [i for i in range(64) if mutated[i] != payload[i]]
        assert diff == [10]
        assert mutated[10] ^ payload[10] == 1 << 3

    def test_flip_bit_default_hits_middle(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(bytes(100))
        flip_bit(path)
        assert path.read_bytes()[50] != 0


class TestPoisonSlab:
    def test_deterministic_positions(self):
        slab = np.zeros((4, 3, 2))
        a = poison_slab(slab, n_values=3, seed=42)
        b = poison_slab(slab, n_values=3, seed=42)
        np.testing.assert_array_equal(np.isnan(a), np.isnan(b))
        assert int(np.isnan(a).sum()) == 3

    def test_original_is_untouched(self):
        slab = np.ones((2, 2, 2))
        poisoned = poison_slab(slab, n_values=2, seed=0)
        assert np.isfinite(slab).all()
        assert not np.isfinite(poisoned).all()

    def test_explicit_positions_and_inf(self):
        slab = np.zeros((2, 2))
        poisoned = poison_slab(slab, value=np.inf, positions=[(0, 1), (1, 0)])
        assert np.isinf(poisoned[0, 1]) and np.isinf(poisoned[1, 0])
        assert poisoned[0, 0] == 0.0 and poisoned[1, 1] == 0.0
