"""Experiment-harness tests (configs, presets, benchmark assembly)."""

from datetime import timedelta

import pytest

from repro.eval.experiments import (
    CERT_DEFAULT,
    CERT_PAPER,
    CERT_SMALL,
    CaseStudyConfig,
    CertBenchmarkConfig,
    case_study_config,
    cert_config,
)
from repro.nn.autoencoder import AutoencoderConfig


class TestCertConfig:
    def test_presets_resolve(self):
        assert cert_config("small") is CERT_SMALL
        assert cert_config("default") is CERT_DEFAULT
        assert cert_config("paper") is CERT_PAPER

    def test_env_var_default(self, monkeypatch):
        monkeypatch.delenv("ACOBE_BENCH_SCALE", raising=False)
        assert cert_config() is CERT_DEFAULT
        monkeypatch.setenv("ACOBE_BENCH_SCALE", "small")
        assert cert_config() is CERT_SMALL

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            cert_config("galactic")

    def test_paper_preset_matches_paper(self):
        assert sum(CERT_PAPER.department_sizes) == 929
        assert CERT_PAPER.window == 30
        assert CERT_PAPER.autoencoder.encoder_units == (512, 256, 128, 64)

    def test_dates(self):
        cfg = CERT_SMALL
        assert (cfg.end - cfg.start).days == cfg.n_days - 1
        assert cfg.train_end == cfg.start + timedelta(days=cfg.train_end_offset)

    def test_validation_train_end(self):
        with pytest.raises(ValueError):
            CertBenchmarkConfig(
                name="x",
                department_sizes=(4,),
                n_days=50,
                window=5,
                matrix_days=5,
                train_end_offset=49,
                s1_start_offset=45,
                s1_duration=3,
                s2_start_offset=45,
                s2_surf_days=3,
                s2_exfil_days=2,
                autoencoder=AutoencoderConfig(encoder_units=(4,)),
            )

    def test_validation_scenario_in_test_period(self):
        with pytest.raises(ValueError, match="test period"):
            CertBenchmarkConfig(
                name="x",
                department_sizes=(4,),
                n_days=50,
                window=5,
                matrix_days=5,
                train_end_offset=40,
                s1_start_offset=10,  # inside training
                s1_duration=3,
                s2_start_offset=45,
                s2_surf_days=3,
                s2_exfil_days=2,
                autoencoder=AutoencoderConfig(encoder_units=(4,)),
            )


class TestCaseStudyConfig:
    def test_presets(self):
        for attack in ("zeus", "wannacry"):
            for scale in ("small", "default", "paper"):
                cfg = case_study_config(attack, scale)
                assert cfg.attack == attack
                assert cfg.train_end < cfg.attack_day <= cfg.end

    def test_paper_scale_population(self):
        cfg = case_study_config("zeus", "paper")
        assert cfg.n_employees == 246
        assert cfg.window == 14  # two-week window per Section VI

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            case_study_config("zeus", "huge")

    def test_unknown_attack(self):
        with pytest.raises(ValueError):
            CaseStudyConfig(
                name="x",
                attack="stuxnet",
                n_employees=5,
                n_days=60,
                window=5,
                matrix_days=5,
                train_end_offset=40,
                attack_day_offset=50,
                autoencoder=AutoencoderConfig(encoder_units=(4,)),
            )


class TestBenchmarkAssembly:
    def test_small_benchmark_structure(self, small_benchmark):
        b = small_benchmark
        assert len(b.cube.users) == sum(b.config.department_sizes)
        # One victim per department, alternating scenarios.
        assert len(b.abnormal_users) == len(b.config.department_sizes)
        scenarios = sorted(i.scenario for i in b.dataset.injections)
        assert scenarios == [1, 2]

    def test_labels_match_injections(self, small_benchmark):
        labels = small_benchmark.labels
        assert sum(labels.values()) == len(small_benchmark.abnormal_users)

    def test_split_covers_all_days(self, small_benchmark):
        b = small_benchmark
        assert len(b.train_days) + len(b.test_days) == b.config.n_days
        assert max(b.train_days) < min(b.test_days)

    def test_scenarios_fall_in_test_period(self, small_benchmark):
        for inj in small_benchmark.dataset.injections:
            assert inj.start > max(small_benchmark.train_days)

    def test_group_map_matches_departments(self, small_benchmark):
        b = small_benchmark
        groups = set(b.group_map.values())
        assert groups == set(b.dataset.organization.departments())

    def test_coarse_cube_cached(self, small_benchmark):
        coarse1 = small_benchmark.coarse_cube()
        coarse2 = small_benchmark.coarse_cube()
        assert coarse1 is coarse2
        assert coarse1.n_timeframes == 24
        assert coarse1.users == small_benchmark.cube.users


class TestAggregations:
    def make_run(self):
        """Two aspects, three users, four days; u0 spikes in both aspects
        on the same day, u1 spikes in different aspects on different days."""
        import numpy as np
        from datetime import date, timedelta

        from repro.eval.experiments import ModelRun
        from repro.core.critic import investigation_list

        days = [date(2010, 1, 1) + timedelta(days=i) for i in range(4)]
        users = ["u0", "u1", "u2"]
        # Small distinct jitter everywhere so no two scores tie exactly.
        a = np.array(
            [
                [0.10, 0.90, 0.11, 0.12],  # u0 spikes day 1
                [0.13, 0.14, 0.90, 0.15],  # u1 spikes day 2 in aspect a
                [0.16, 0.17, 0.18, 0.19],
            ]
        )
        b = np.array(
            [
                [0.20, 0.90, 0.21, 0.22],  # u0 spikes day 1 too
                [0.90, 0.23, 0.24, 0.25],  # u1 spikes day 0 in aspect b
                [0.26, 0.27, 0.28, 0.29],
            ]
        )
        scores = {"a": a, "b": b}
        aspect_scores = {
            aspect: {u: float(arr[i].max()) for i, u in enumerate(users)}
            for aspect, arr in scores.items()
        }
        inv = investigation_list(aspect_scores, n_votes=2)
        return ModelRun(name="x", users=users, test_days=days, scores=scores, investigation=inv)

    def test_daily_rewards_same_day_coincidence(self):
        from repro.eval.experiments import daily_min_priorities

        run = self.make_run()
        best = daily_min_priorities(run, n_votes=2)
        # u0's spikes coincide -> daily priority 1; u1's never do.
        assert best["u0"] == 1
        assert best["u1"] > 1

    def test_pooled_cannot_tell_them_apart(self):
        run = self.make_run()
        priorities = run.priorities
        # Max-pooling sees both users spike in both aspects.
        assert priorities["u0"] == priorities["u1"]

    def test_evaluate_run_aggregation_modes(self):
        from repro.eval.experiments import evaluate_run

        run = self.make_run()
        labels = {"u0": True, "u1": False, "u2": False}
        pooled = evaluate_run(run, labels, aggregation="pooled")
        daily = evaluate_run(run, labels, aggregation="daily", n_votes=2)
        assert daily.auc >= pooled.auc
        with pytest.raises(ValueError):
            evaluate_run(run, labels, aggregation="weekly")
