"""ROC / PR / FP-count metric tests, including the paper's tie rule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    auc,
    average_precision,
    confusion_at_budget,
    CurvePoint,
    f1_score,
    fps_before_each_tp,
    precision_recall_curve,
    precision_recall_f1,
    roc_curve,
    worst_case_order,
)


@pytest.fixture
def perfect():
    """Both positives ranked strictly first."""
    priorities = {"bad1": 1, "bad2": 2, "ok1": 3, "ok2": 4, "ok3": 5}
    labels = {"bad1": True, "bad2": True, "ok1": False, "ok2": False, "ok3": False}
    return priorities, labels


@pytest.fixture
def tied():
    """A FP shares the positive's priority -> worst case puts FP first."""
    priorities = {"bad": 5, "fp": 5, "ok": 9}
    labels = {"bad": True, "fp": False, "ok": False}
    return priorities, labels


class TestWorstCaseOrder:
    def test_ascending_priority(self, perfect):
        priorities, labels = perfect
        assert worst_case_order(priorities, labels)[:2] == ["bad1", "bad2"]

    def test_fp_before_tp_on_tie(self, tied):
        priorities, labels = tied
        assert worst_case_order(priorities, labels) == ["fp", "bad", "ok"]

    def test_population_mismatch_raises(self):
        with pytest.raises(ValueError):
            worst_case_order({"a": 1}, {"b": True})

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            worst_case_order({}, {})


class TestRocCurve:
    def test_perfect_roc(self, perfect):
        priorities, labels = perfect
        points = roc_curve(priorities, labels)
        assert points[0] == CurvePoint(0.0, 0.0)
        assert points[-1] == CurvePoint(1.0, 1.0)
        assert auc(points) == pytest.approx(1.0)

    def test_worst_roc(self):
        priorities = {"ok1": 1, "ok2": 2, "bad": 3}
        labels = {"ok1": False, "ok2": False, "bad": True}
        assert auc(roc_curve(priorities, labels)) == pytest.approx(0.0)

    def test_tie_costs_auc(self, tied):
        priorities, labels = tied
        # FP first: curve goes right before up -> AUC = 1 * 1/2 area lost.
        assert auc(roc_curve(priorities, labels)) == pytest.approx(0.5)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_curve({"a": 1}, {"a": True})

    def test_auc_needs_two_points(self):
        with pytest.raises(ValueError):
            auc([CurvePoint(0, 0)])

    def test_auc_rejects_decreasing_x(self):
        with pytest.raises(ValueError):
            auc([CurvePoint(0.5, 0), CurvePoint(0.2, 1)])


class TestPrCurve:
    def test_perfect_pr(self, perfect):
        priorities, labels = perfect
        points = precision_recall_curve(priorities, labels)
        assert all(p.y == 1.0 for p in points)
        assert average_precision(priorities, labels) == pytest.approx(1.0)

    def test_tied_pr(self, tied):
        priorities, labels = tied
        points = precision_recall_curve(priorities, labels)
        # Single positive found at position 2 -> precision 1/2 at recall 1.
        assert points[-1] == CurvePoint(1.0, 0.5)
        assert average_precision(priorities, labels) == pytest.approx(0.5)

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            precision_recall_curve({"a": 1}, {"a": False})


class TestFpsBeforeTps:
    def test_paper_style_counts(self, perfect):
        priorities, labels = perfect
        assert fps_before_each_tp(priorities, labels) == [0, 0]

    def test_with_interleaved_fps(self):
        priorities = {"fp1": 1, "tp1": 2, "fp2": 3, "fp3": 4, "tp2": 5}
        labels = {"fp1": False, "tp1": True, "fp2": False, "fp3": False, "tp2": True}
        assert fps_before_each_tp(priorities, labels) == [1, 3]


class TestConfusionAndF1:
    def test_confusion_at_budget(self, perfect):
        priorities, labels = perfect
        c = confusion_at_budget(priorities, labels, budget=2)
        assert c == {"tp": 2, "fp": 0, "tn": 3, "fn": 0}

    def test_budget_zero(self, perfect):
        priorities, labels = perfect
        c = confusion_at_budget(priorities, labels, budget=0)
        assert c["tp"] == 0 and c["fn"] == 2

    def test_negative_budget_raises(self, perfect):
        priorities, labels = perfect
        with pytest.raises(ValueError):
            confusion_at_budget(priorities, labels, budget=-1)

    def test_f1_perfect(self, perfect):
        priorities, labels = perfect
        assert f1_score(priorities, labels, budget=2) == pytest.approx(1.0)

    def test_precision_recall_f1_zero_division(self):
        assert precision_recall_f1({"tp": 0, "fp": 0, "fn": 0, "tn": 5}) == (0.0, 0.0, 0.0)


@st.composite
def populations(draw):
    n = draw(st.integers(min_value=3, max_value=30))
    labels = {}
    priorities = {}
    for i in range(n):
        user = f"u{i}"
        labels[user] = draw(st.booleans())
        priorities[user] = draw(st.integers(min_value=1, max_value=10))
    # Ensure both classes exist.
    labels["u0"] = True
    labels["u1"] = False
    return priorities, labels


class TestProperties:
    @given(populations())
    @settings(max_examples=50, deadline=None)
    def test_auc_in_unit_interval(self, pop):
        priorities, labels = pop
        value = auc(roc_curve(priorities, labels))
        assert -1e-9 <= value <= 1.0 + 1e-9

    @given(populations())
    @settings(max_examples=50, deadline=None)
    def test_roc_monotone(self, pop):
        priorities, labels = pop
        points = roc_curve(priorities, labels)
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)

    @given(populations())
    @settings(max_examples=50, deadline=None)
    def test_fps_counts_non_decreasing(self, pop):
        priorities, labels = pop
        counts = fps_before_each_tp(priorities, labels)
        assert counts == sorted(counts)
        assert len(counts) == sum(labels.values())

    @given(populations())
    @settings(max_examples=50, deadline=None)
    def test_ap_in_unit_interval(self, pop):
        priorities, labels = pop
        assert 0.0 < average_precision(priorities, labels) <= 1.0
