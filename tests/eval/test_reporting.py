"""Plain-text reporting helper tests."""

import numpy as np
import pytest

from repro.eval.metrics import CurvePoint
from repro.eval.reporting import curve_table, format_table, heatmap, sparkline, trend_panel


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)
        assert "long-name" in lines[3]

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["x"]])

    def test_rejects_empty_headers(self):
        with pytest.raises(ValueError):
            format_table([], [])


class TestSparkline:
    def test_length_matches_series(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline(list(range(9)))
        assert line == "".join(sorted(line))

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "   "

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            sparkline([])

    def test_explicit_bounds(self):
        line = sparkline([0.5], lo=0.0, hi=1.0)
        assert len(line) == 1


class TestHeatmap:
    def test_shape(self):
        text = heatmap(np.zeros((3, 10)))
        assert len(text.splitlines()) == 3

    def test_labels(self):
        text = heatmap(np.zeros((2, 4)), row_labels=["aa", "b"])
        lines = text.splitlines()
        assert lines[0].startswith("aa |")
        assert lines[1].startswith(" b |")

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros((2, 4)), row_labels=["only-one"])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros(4))

    def test_extremes_use_extreme_glyphs(self):
        text = heatmap(np.array([[0.0, 1.0]]), lo=0.0, hi=1.0)
        row = text.splitlines()[0]
        assert row[1] == " " and row[2] == "@"


class TestCurveTable:
    def test_subsamples_long_curves(self):
        points = [CurvePoint(i / 100, i / 100) for i in range(101)]
        text = curve_table(points, max_rows=10)
        assert len(text.splitlines()) <= 16
        assert "1.0000" in text  # final point kept

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            curve_table([])


class TestTrendPanel:
    def test_contains_highlight_and_stats(self):
        scores = np.random.default_rng(0).random((5, 20))
        users = [f"u{i}" for i in range(5)]
        text = trend_panel(scores, users, "u2", title="demo")
        assert "demo" in text
        assert "u2 (abnormal)" in text
        assert "mean=" in text and "std=" in text

    def test_background_limit(self):
        scores = np.random.default_rng(0).random((30, 5))
        users = [f"u{i}" for i in range(30)]
        text = trend_panel(scores, users, "u0", max_background=3)
        assert len(text.splitlines()) == 1 + 1 + 3  # stats + highlight + 3 bg

    def test_unknown_user_raises(self):
        with pytest.raises(ValueError):
            trend_panel(np.zeros((2, 3)), ["a", "b"], "zz")

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            trend_panel(np.zeros((2, 3)), ["a"], "a")
