"""CLI tests (parser wiring and the fast subcommands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(["simulate", "/tmp/x", "--scale", "small", "--seed", "9"])
        assert args.command == "simulate"
        assert args.output == "/tmp/x"
        assert args.seed == 9

    def test_detect_model_choices(self):
        args = build_parser().parse_args(["detect", "--model", "base-ff"])
        assert args.model == "base-ff"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--model", "transformer"])

    def test_case_study_attacks(self):
        args = build_parser().parse_args(["case-study", "zeus"])
        assert args.attack == "zeus"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["case-study", "mirai"])


class TestCommands:
    def test_presets_runs(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "small" in out and "paper" in out and "512x256x128x64" in out

    def test_simulate_writes_csvs(self, tmp_path, capsys):
        # Tiny bespoke run: reuse the small preset but a different seed to
        # keep it independent of the session-scoped benchmark fixture.
        assert main(["simulate", str(tmp_path), "--scale", "small", "--no-injection", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (tmp_path / "http.csv").exists()
        assert (tmp_path / "logon.csv").exists()

    def test_simulate_with_injection_reports_insiders(self, tmp_path, capsys):
        assert main(["simulate", str(tmp_path), "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "injected insiders:" in out
        assert (tmp_path / "device.csv").exists()
