"""CLI tests (parser wiring and the fast subcommands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(["simulate", "/tmp/x", "--scale", "small", "--seed", "9"])
        assert args.command == "simulate"
        assert args.output == "/tmp/x"
        assert args.seed == 9

    def test_detect_model_choices(self):
        args = build_parser().parse_args(["detect", "--model", "base-ff"])
        assert args.model == "base-ff"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--model", "transformer"])

    def test_case_study_attacks(self):
        args = build_parser().parse_args(["case-study", "zeus"])
        assert args.attack == "zeus"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["case-study", "mirai"])

    def test_stream_args(self):
        args = build_parser().parse_args(
            [
                "stream",
                "--checkpoint-dir", "/tmp/ckpt",
                "--resume",
                "--checkpoint-every", "5",
                "--stop-after-days", "40",
                "--on-bad-day", "skip",
            ]
        )
        assert args.command == "stream"
        assert args.checkpoint_dir == "/tmp/ckpt"
        assert args.resume is True
        assert args.checkpoint_every == 5
        assert args.stop_after_days == 40
        assert args.on_bad_day == "skip"

    def test_stream_defaults_leave_policy_unset(self):
        # None lets a resumed stream inherit the checkpointed policy.
        args = build_parser().parse_args(["stream"])
        assert args.on_bad_day is None
        assert args.resume is False
        assert args.checkpoint_every == 1

    def test_stream_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--on-bad-day", "ignore"])


class TestCommands:
    def test_presets_runs(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "small" in out and "paper" in out and "512x256x128x64" in out

    def test_simulate_writes_csvs(self, tmp_path, capsys):
        # Tiny bespoke run: reuse the small preset but a different seed to
        # keep it independent of the session-scoped benchmark fixture.
        assert main(["simulate", str(tmp_path), "--scale", "small", "--no-injection", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (tmp_path / "http.csv").exists()
        assert (tmp_path / "logon.csv").exists()

    def test_simulate_with_injection_reports_insiders(self, tmp_path, capsys):
        assert main(["simulate", str(tmp_path), "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "injected insiders:" in out
        assert (tmp_path / "device.csv").exists()

    def test_stream_resume_requires_checkpoint_dir(self, capsys):
        assert main(["stream", "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_stream_rejects_bad_checkpoint_interval(self, capsys):
        assert main(["stream", "--checkpoint-every", "0"]) == 2
        assert "--checkpoint-every" in capsys.readouterr().err

    def test_stream_resume_without_model_fails_cleanly(self, tmp_path, capsys):
        assert main(["stream", "--resume", "--checkpoint-dir", str(tmp_path)]) == 2
        assert "no saved model" in capsys.readouterr().err


class TestIngestParser:
    def test_ingest_args(self):
        args = build_parser().parse_args(
            [
                "ingest",
                "--shuffle-seed", "3",
                "--allowed-lateness", "2",
                "--late-policy", "quarantine-file",
                "--quarantine-file", "/tmp/q.jsonl",
                "--max-open-days", "12",
                "--checkpoint-dir", "/tmp/ckpt",
                "--resume",
                "--stop-after-events", "5000",
            ]
        )
        assert args.command == "ingest"
        assert args.shuffle_seed == 3
        assert args.allowed_lateness == 2
        assert args.late_policy == "quarantine-file"
        assert args.quarantine_file == "/tmp/q.jsonl"
        assert args.max_open_days == 12
        assert args.resume is True
        assert args.stop_after_events == 5000

    def test_ingest_defaults(self):
        args = build_parser().parse_args(["ingest"])
        assert args.shuffle_seed is None  # canonical arrival order
        assert args.allowed_lateness == 1
        assert args.late_policy == "drop"
        assert args.checkpoint_every == 1
        assert args.resume is False

    def test_ingest_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ingest", "--late-policy", "vanish"])

    def test_ingest_resume_requires_checkpoint_dir(self, capsys):
        assert main(["ingest", "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_ingest_quarantine_policy_requires_path(self, capsys):
        assert main(["ingest", "--late-policy", "quarantine-file"]) == 2
        assert "quarantine" in capsys.readouterr().err

    def test_ingest_resume_without_model_fails_cleanly(self, tmp_path, capsys):
        assert main(["ingest", "--resume", "--checkpoint-dir", str(tmp_path)]) == 2
        assert "no saved model" in capsys.readouterr().err
