"""Event schema validation tests."""

from datetime import datetime

import pytest

from repro.logs.schema import (
    DeviceEvent,
    DnsEvent,
    EmailEvent,
    FileEvent,
    HttpEvent,
    LogonEvent,
    PowerShellEvent,
    ProxyEvent,
    SysmonEvent,
    UserRecord,
    WindowsEvent,
    event_to_row,
    event_type_name,
)

TS = datetime(2010, 5, 3, 14, 30)


class TestDeviceEvent:
    def test_valid(self):
        e = DeviceEvent(TS, "ABC0001", "connect", "PC-1")
        assert e.day == TS.date()

    def test_rejects_unknown_activity(self):
        with pytest.raises(ValueError):
            DeviceEvent(TS, "ABC0001", "mount", "PC-1")

    def test_rejects_empty_host(self):
        with pytest.raises(ValueError):
            DeviceEvent(TS, "ABC0001", "connect", "")

    def test_rejects_empty_user(self):
        with pytest.raises(ValueError):
            DeviceEvent(TS, "", "connect", "PC-1")


class TestFileEvent:
    def test_open_requires_from(self):
        with pytest.raises(ValueError):
            FileEvent(TS, "u", "open", "F1")

    def test_write_requires_to(self):
        with pytest.raises(ValueError):
            FileEvent(TS, "u", "write", "F1", from_location="local")

    def test_copy_requires_both(self):
        with pytest.raises(ValueError):
            FileEvent(TS, "u", "copy", "F1", from_location="local")

    def test_valid_copy(self):
        e = FileEvent(TS, "u", "copy", "F1", from_location="remote", to_location="local")
        assert e.from_location == "remote"

    def test_rejects_bad_location(self):
        with pytest.raises(ValueError):
            FileEvent(TS, "u", "open", "F1", from_location="cloud")

    def test_rejects_empty_file_id(self):
        with pytest.raises(ValueError):
            FileEvent(TS, "u", "open", "", from_location="local")


class TestHttpEvent:
    def test_visit_needs_no_filetype(self):
        assert HttpEvent(TS, "u", "visit", "example.com").filetype is None

    def test_upload_requires_filetype(self):
        with pytest.raises(ValueError):
            HttpEvent(TS, "u", "upload", "example.com")

    def test_rejects_unknown_filetype(self):
        with pytest.raises(ValueError):
            HttpEvent(TS, "u", "upload", "example.com", filetype="iso")

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            HttpEvent(TS, "u", "visit", "")


class TestOtherEvents:
    def test_email_counters_non_negative(self):
        with pytest.raises(ValueError):
            EmailEvent(TS, "u", "send", n_recipients=-1)

    def test_logon_requires_pc(self):
        with pytest.raises(ValueError):
            LogonEvent(TS, "u", "logon", "")

    def test_windows_event_id_positive(self):
        with pytest.raises(ValueError):
            WindowsEvent(TS, "u", 0)

    def test_sysmon_ok(self):
        e = SysmonEvent(TS, "u", 13, image="x.exe", target="HKCU\\Run")
        assert e.event_id == 13

    def test_powershell_default_id(self):
        assert PowerShellEvent(TS, "u", script="ls").event_id == 4104

    def test_proxy_verdicts(self):
        with pytest.raises(ValueError):
            ProxyEvent(TS, "u", "d.com", verdict="timeout")

    def test_proxy_bytes_non_negative(self):
        with pytest.raises(ValueError):
            ProxyEvent(TS, "u", "d.com", bytes_out=-5)

    def test_dns_requires_domain(self):
        with pytest.raises(ValueError):
            DnsEvent(TS, "u", "")


class TestUserRecord:
    def test_department_is_third_tier(self):
        r = UserRecord("ABC0001", "A B", ("Corp", "Div 1", "Dept 2", "Team 9"))
        assert r.department == "Corp/Div 1/Dept 2"

    def test_requires_three_tiers(self):
        with pytest.raises(ValueError):
            UserRecord("ABC0001", "A B", ("Corp", "Div 1"))


class TestTypeRegistry:
    def test_type_name(self):
        assert event_type_name(DeviceEvent(TS, "u", "connect", "PC")) == "device"
        assert event_type_name(ProxyEvent(TS, "u", "d.com")) == "proxy"

    def test_event_to_row_round_trip_fields(self):
        e = HttpEvent(TS, "u", "upload", "d.com", filetype="doc")
        row = event_to_row(e)
        assert row["type"] == "http"
        assert row["timestamp"] == TS.isoformat()
        assert row["filetype"] == "doc"
