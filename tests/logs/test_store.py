"""LogStore indexing and query tests."""

from datetime import date, datetime

import pytest

from repro.logs.schema import DeviceEvent, HttpEvent, LogonEvent
from repro.logs.store import LogStore


def ts(day, hour=9):
    return datetime(2010, 1, day, hour)


@pytest.fixture
def store():
    s = LogStore()
    s.extend(
        [
            LogonEvent(ts(4), "alice", "logon", "PC-A"),
            LogonEvent(ts(4, 17), "alice", "logoff", "PC-A"),
            LogonEvent(ts(5), "alice", "logon", "PC-A"),
            HttpEvent(ts(4, 10), "alice", "visit", "example.com"),
            LogonEvent(ts(4), "bob", "logon", "PC-B"),
        ]
    )
    return s


def test_count(store):
    assert store.count() == 5
    assert len(store) == 5


def test_users_sorted(store):
    assert store.users() == ["alice", "bob"]


def test_days_sorted(store):
    assert store.days() == [date(2010, 1, 4), date(2010, 1, 5)]


def test_query_by_user_type(store):
    assert len(store.events("alice", "logon")) == 3
    assert len(store.events("bob", "logon")) == 1
    assert len(store.events("bob", "http")) == 0


def test_query_by_day(store):
    assert len(store.events("alice", "logon", date(2010, 1, 4))) == 2
    assert len(store.events("alice", "logon", date(2010, 1, 6))) == 0


def test_type_names(store):
    assert store.type_names() == ["http", "logon"]


def test_count_by_type(store):
    assert store.count_by_type() == {"logon": 4, "http": 1}


def test_iter_events_covers_all(store):
    assert sum(1 for _ in store.iter_events()) == 5


def test_sort_orders_chronologically():
    s = LogStore()
    s.append(LogonEvent(ts(4, 15), "u", "logon", "PC"))
    s.append(LogonEvent(ts(4, 8), "u", "logon", "PC"))
    s.sort()
    events = store_events = s.events("u", "logon")
    assert [e.timestamp.hour for e in events] == [8, 15]


def test_merge():
    a, b = LogStore(), LogStore()
    a.append(LogonEvent(ts(4), "u", "logon", "PC"))
    b.append(DeviceEvent(ts(5), "u", "connect", "PC"))
    a.merge(b)
    assert a.count() == 2
    assert a.type_names() == ["device", "logon"]


def test_empty_store():
    s = LogStore()
    assert s.users() == []
    assert s.days() == []
    assert s.events("nobody", "logon") == []


def test_out_of_order_reads_are_lazily_sorted():
    # No explicit sort(): the first read must see chronological order.
    s = LogStore()
    s.append(LogonEvent(ts(4, 15), "u", "logon", "PC"))
    s.append(LogonEvent(ts(4, 8), "u", "logon", "PC"))
    assert [e.timestamp.hour for e in s.events("u", "logon")] == [8, 15]
    assert [e.timestamp.hour for e in s.iter_events()] == [8, 15]


def test_in_order_appends_never_mark_dirty():
    s = LogStore()
    s.append(LogonEvent(ts(4, 8), "u", "logon", "PC"))
    s.append(LogonEvent(ts(4, 15), "u", "logon", "PC"))
    s.append(LogonEvent(ts(5, 9), "u", "logon", "PC"))
    assert not s._dirty


def test_merge_then_extract_is_chronological():
    # Regression: merging stores with interleaved timestamps (e.g. two
    # collectors feeding the same log type) used to require a manual
    # sort() before feature extraction; readers now re-sort lazily.
    a, b = LogStore(), LogStore()
    a.extend(
        [
            LogonEvent(ts(4, 8), "u", "logon", "PC-A"),
            LogonEvent(ts(4, 15), "u", "logon", "PC-A"),
            HttpEvent(ts(5, 9), "u", "visit", "example.com"),
        ]
    )
    b.extend(
        [
            LogonEvent(ts(4, 10), "u", "logon", "PC-B"),
            HttpEvent(ts(5, 7), "u", "visit", "example.com"),
        ]
    )
    a.merge(b)
    assert a._dirty
    # Every bucket the extractors read from is chronological, without a
    # manual sort() in between.
    for type_name in a.type_names():
        stamps = [e.timestamp for e in a.events("u", type_name)]
        assert stamps == sorted(stamps)
        for day in a.days():
            day_stamps = [e.timestamp for e in a.events("u", type_name, day)]
            assert day_stamps == sorted(day_stamps)
