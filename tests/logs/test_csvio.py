"""CSV round-trip tests for the CERT-style on-disk layout."""

from datetime import datetime

import pytest

from repro.logs.csvio import read_store, write_store
from repro.logs.schema import (
    DeviceEvent,
    DnsEvent,
    FileEvent,
    HttpEvent,
    ProxyEvent,
    SysmonEvent,
)
from repro.logs.store import LogStore

TS = datetime(2010, 2, 1, 11, 22, 33)


def build_store():
    s = LogStore()
    s.extend(
        [
            DeviceEvent(TS, "u1", "connect", "PC-1"),
            FileEvent(TS, "u1", "copy", "F9", from_location="remote", to_location="local"),
            HttpEvent(TS, "u1", "upload", "x.com", filetype="zip"),
            HttpEvent(TS, "u2", "visit", "y.com"),
            ProxyEvent(TS, "u2", "z.com", "/a", "failure", bytes_out=10, bytes_in=0),
            SysmonEvent(TS, "u2", 13, image="a.exe", target="HKLM\\X"),
            DnsEvent(TS, "u2", "nx.example", resolved=False),
        ]
    )
    s.sort()
    return s


def test_write_creates_one_file_per_type(tmp_path):
    paths = write_store(build_store(), tmp_path)
    assert set(paths) == {"device", "file", "http", "proxy", "sysmon", "dns"}
    for path in paths.values():
        assert path.exists()


def test_round_trip_preserves_every_event(tmp_path):
    original = build_store()
    write_store(original, tmp_path)
    loaded = read_store(tmp_path)
    assert loaded.count() == original.count()
    assert loaded.users() == original.users()
    assert loaded.type_names() == original.type_names()


def test_round_trip_preserves_field_values(tmp_path):
    original = build_store()
    write_store(original, tmp_path)
    loaded = read_store(tmp_path)

    [http] = loaded.events("u1", "http")
    assert http.activity == "upload"
    assert http.filetype == "zip"
    assert http.timestamp == TS

    [f] = loaded.events("u1", "file")
    assert f.from_location == "remote" and f.to_location == "local"

    [dns] = loaded.events("u2", "dns")
    assert dns.resolved is False

    [proxy] = loaded.events("u2", "proxy")
    assert proxy.bytes_out == 10 and proxy.verdict == "failure"

    [sysmon] = loaded.events("u2", "sysmon")
    assert sysmon.event_id == 13


def test_none_fields_round_trip_as_none(tmp_path):
    original = build_store()
    write_store(original, tmp_path)
    loaded = read_store(tmp_path)
    [visit] = loaded.events("u2", "http")
    assert visit.filetype is None


def test_read_missing_directory_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        read_store(tmp_path / "nope")


def test_read_ignores_absent_types(tmp_path):
    s = LogStore()
    s.append(DeviceEvent(TS, "u", "connect", "PC"))
    write_store(s, tmp_path)
    loaded = read_store(tmp_path)
    assert loaded.type_names() == ["device"]
