"""Property-based round-trip tests for the CSV layer."""

from datetime import datetime, timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs.csvio import read_store, write_store
from repro.logs.schema import (
    DeviceEvent,
    DnsEvent,
    EmailEvent,
    HttpEvent,
    LogonEvent,
    ProxyEvent,
)
from repro.logs.store import LogStore

BASE = datetime(2010, 6, 1, 0, 0)

users = st.from_regex(r"[A-Z]{3}[0-9]{4}", fullmatch=True)
timestamps = st.integers(min_value=0, max_value=10_000).map(
    lambda minutes: BASE + timedelta(minutes=minutes)
)
domains = st.from_regex(r"[a-z]{3,12}\.(com|org|net)", fullmatch=True)


@st.composite
def events(draw):
    kind = draw(st.sampled_from(["device", "http", "logon", "email", "proxy", "dns"]))
    ts = draw(timestamps)
    user = draw(users)
    if kind == "device":
        return DeviceEvent(ts, user, draw(st.sampled_from(["connect", "disconnect"])),
                           f"PC-{draw(st.integers(0, 99))}")
    if kind == "http":
        activity = draw(st.sampled_from(["visit", "download", "upload"]))
        filetype = None if activity == "visit" else draw(
            st.sampled_from(["doc", "exe", "jpg", "pdf", "txt", "zip", "other"])
        )
        return HttpEvent(ts, user, activity, draw(domains), filetype=filetype)
    if kind == "logon":
        return LogonEvent(ts, user, draw(st.sampled_from(["logon", "logoff"])),
                          f"PC-{draw(st.integers(0, 99))}")
    if kind == "email":
        return EmailEvent(ts, user, draw(st.sampled_from(["send", "receive", "view"])),
                          n_recipients=draw(st.integers(0, 20)),
                          size_bytes=draw(st.integers(0, 10**6)),
                          n_attachments=draw(st.integers(0, 5)))
    if kind == "proxy":
        return ProxyEvent(ts, user, draw(domains), "/x",
                          draw(st.sampled_from(["success", "failure", "blocked"])),
                          bytes_out=draw(st.integers(0, 10**6)),
                          bytes_in=draw(st.integers(0, 10**6)))
    return DnsEvent(ts, user, draw(domains), resolved=draw(st.booleans()))


@given(st.lists(events(), min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_csv_round_trip_is_lossless(tmp_path_factory, batch):
    directory = tmp_path_factory.mktemp("csv")
    store = LogStore()
    store.extend(batch)
    store.sort()
    write_store(store, directory)
    loaded = read_store(directory)

    assert loaded.count() == store.count()
    assert loaded.users() == store.users()
    assert loaded.type_names() == store.type_names()
    for user in store.users():
        for type_name in store.type_names():
            original = sorted(store.events(user, type_name), key=lambda e: (e.timestamp, repr(e)))
            restored = sorted(loaded.events(user, type_name), key=lambda e: (e.timestamp, repr(e)))
            assert original == restored
