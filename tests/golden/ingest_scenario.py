"""The golden ingest scenario: sealed-slab digests for a fixed event feed.

This module is the single source of truth for the fixture committed at
``tests/golden/ingest_small.json``.  The integration test
(``tests/integration/test_golden_ingest.py``) re-simulates the tiny
CERT dataset, replays it through an :class:`~repro.ingest.Ingestor` in
both canonical and shuffled arrival order, and asserts the SHA-256 of
every sealed day's slab matches the committed digest.  Because the
batch extractor runs on the same accumulator, this pins the *counting*
semantics across PRs: any unintentional change to a feature definition,
the novelty commit point, or the watermark sealing order flips a digest.

Regenerate the fixture (only after an *intentional* counting change)::

    PYTHONPATH=src python -m tests.golden.ingest_scenario --write
"""

from __future__ import annotations

import hashlib
import json
from datetime import date
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.datagen.calendar import SimulationCalendar
from repro.datagen.org import build_organization
from repro.datagen.simulator import simulate_cert_dataset
from repro.ingest import IngestConfig, Ingestor, SlabBuilder, arrival_order, shuffled_arrival

GOLDEN_PATH = Path(__file__).with_name("ingest_small.json")
GOLDEN_SCHEMA = "acobe.golden_ingest"

LATENESS = 1
SHUFFLE_SEED = 9


def build_feed():
    """The tiny dataset the unit-test fixtures use, as an arrival feed."""
    org = build_organization([6, 6], seed=3)
    calendar = SimulationCalendar.with_default_holidays(date(2010, 3, 1), date(2010, 4, 18))
    dataset = simulate_cert_dataset(org, calendar, seed=5)
    return org.user_ids(), calendar.days(), arrival_order(dataset.store)


def slab_digests(users: List[str], days: List[date], records) -> Dict[str, str]:
    config = IngestConfig(allowed_lateness_days=LATENESS, start_day=days[0])
    ingestor = Ingestor(SlabBuilder(users), None, config)
    digests: Dict[str, str] = {}
    for record in records:
        for sealed in ingestor.push(record.event, record.fingerprint):
            digests[sealed.day.isoformat()] = hashlib.sha256(
                np.ascontiguousarray(sealed.slab).tobytes()
            ).hexdigest()
    for sealed in ingestor.flush(until=days[-1]):
        digests[sealed.day.isoformat()] = hashlib.sha256(
            np.ascontiguousarray(sealed.slab).tobytes()
        ).hexdigest()
    assert ingestor.events_late == 0
    return digests


def build_document() -> dict:
    users, days, records = build_feed()
    return {
        "schema": GOLDEN_SCHEMA,
        "version": 1,
        "n_users": len(users),
        "n_days": len(days),
        "n_records": len(records),
        "allowed_lateness_days": LATENESS,
        "shuffle_seed": SHUFFLE_SEED,
        "slab_sha256": slab_digests(users, days, records),
    }


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true", help="rewrite the fixture")
    args = parser.parse_args()
    document = build_document()
    if args.write:
        GOLDEN_PATH.write_text(json.dumps(document, indent=2) + "\n")
        print(f"wrote {GOLDEN_PATH}")
    else:
        print(json.dumps(document, indent=2))


if __name__ == "__main__":
    main()
