"""The golden streaming scenario: one small, fully deterministic run.

This module is the single source of truth for the fixture committed at
``tests/golden/streaming_small.json``.  The integration test
(``tests/integration/test_golden_stream.py``) rebuilds the scenario from
scratch and asserts that the batch scorer, a fresh stream, and a
kill-and-resumed stream all reproduce the committed expectations.

Regenerate the fixture (only after an *intentional* scoring change)::

    PYTHONPATH=src python -m tests.golden.scenario --write

The scenario is the same tiny setup the streaming unit tests use: six
users in two groups, three features across two aspects, 35 days of
seeded Poisson counts, a (8, 4) autoencoder trained for 3 epochs with
seed 1.  Everything downstream of ``numpy.random.default_rng(4)`` is
deterministic, so the run is bit-reproducible.
"""

from __future__ import annotations

import json
from datetime import date, timedelta
from pathlib import Path

import numpy as np

from repro.core.detector import CompoundBehaviorModel, ModelConfig
from repro.core.streaming import DailyResult, StreamingDetector
from repro.features.measurements import MeasurementCube
from repro.features.spec import AspectSpec, FeatureSet, FeatureSpec
from repro.nn.autoencoder import AutoencoderConfig
from repro.utils.timeutil import TWO_TIMEFRAMES

GOLDEN_PATH = Path(__file__).with_name("streaming_small.json")
GOLDEN_SCHEMA = "acobe.golden_stream"

TINY_AE = AutoencoderConfig(
    encoder_units=(8, 4),
    epochs=3,
    batch_size=16,
    optimizer="adam",
    early_stopping_patience=None,
    validation_split=0.0,
    seed=1,
)

N_DAYS = 35
N_USERS = 6
N_TRAIN_DAYS = 25
DAYS = [date(2010, 1, 1) + timedelta(days=i) for i in range(N_DAYS)]


def build_cube() -> MeasurementCube:
    fs = FeatureSet(
        [
            AspectSpec("a", (FeatureSpec("f1", "a"), FeatureSpec("f2", "a"))),
            AspectSpec("b", (FeatureSpec("f3", "b"),)),
        ]
    )
    users = [f"u{i}" for i in range(N_USERS)]
    values = (
        np.random.default_rng(4).poisson(5.0, size=(N_USERS, 3, 2, N_DAYS)).astype(float)
    )
    return MeasurementCube(values, users, fs, TWO_TIMEFRAMES, DAYS)


def build_group_map(cube: MeasurementCube) -> dict:
    return {u: ("g1" if i < 3 else "g2") for i, u in enumerate(cube.users)}


def fit_model(
    cube: MeasurementCube, group_map: dict, n_shards: int = 1
) -> CompoundBehaviorModel:
    model = CompoundBehaviorModel(
        ModelConfig(
            window=5, matrix_days=5, critic_n=2, n_shards=n_shards, autoencoder=TINY_AE
        )
    )
    model.fit(cube, group_map, DAYS[:N_TRAIN_DAYS])
    return model


def run_streaming(model, cube, group_map) -> dict:
    """Feed every day through a fresh stream; return {date: DailyResult}."""
    stream = StreamingDetector(model, cube.users, group_map)
    results = {}
    for d, day in enumerate(DAYS):
        out = stream.observe_day(day, cube.values[:, :, :, d])
        if isinstance(out, DailyResult):
            results[day] = out
    return results


def result_to_doc(result: DailyResult) -> dict:
    """The golden-file record for one scored day.

    Scores are stored as exact ``repr`` round-trippable floats (json
    preserves IEEE doubles losslessly), investigation entries as
    (user, priority) in ranked order.
    """
    return {
        "day": result.day.isoformat(),
        "investigation": [
            {"user": e.user, "priority": e.priority}
            for e in result.investigation.entries
        ],
        "scores": {
            aspect: [float(x) for x in arr] for aspect, arr in sorted(result.scores.items())
        },
    }


def generate_golden() -> dict:
    cube = build_cube()
    group_map = build_group_map(cube)
    model = fit_model(cube, group_map)
    results = run_streaming(model, cube, group_map)
    return {
        "schema": GOLDEN_SCHEMA,
        "version": 1,
        "scenario": {
            "users": list(cube.users),
            "n_days": N_DAYS,
            "train_days": N_TRAIN_DAYS,
            "window": model.config.window,
            "matrix_days": model.config.matrix_days,
        },
        "days": [result_to_doc(results[day]) for day in sorted(results)],
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true", help=f"regenerate {GOLDEN_PATH.name} in place"
    )
    args = parser.parse_args(argv)
    document = generate_golden()
    if args.write:
        GOLDEN_PATH.write_text(json.dumps(document, indent=2) + "\n")
        print(f"wrote {GOLDEN_PATH} ({len(document['days'])} scored days)")
    else:
        print(json.dumps(document, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
