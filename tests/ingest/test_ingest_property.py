"""Property tests: the ingest bit-identity guarantee, stated generally.

For ANY random event set, ANY arrival permutation whose lateness stays
within the watermark, ANY injected duplicate re-deliveries, and ANY
mid-stream export/restore cut: the sealed slabs are bit-identical to the
batch extractor run over the same events.
"""

import json
from datetime import date, datetime, timedelta

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.features.cert import extract_cert_measurements
from repro.ingest import (
    ArrivalRecord,
    IngestConfig,
    Ingestor,
    SlabBuilder,
    inject_duplicates,
    shuffled_arrival,
)
from repro.logs.schema import DeviceEvent, FileEvent, HttpEvent
from repro.logs.store import LogStore

USERS = ["u0", "u1", "u2"]
START = date(2012, 5, 1)
N_DAYS = 6
DAYS = [START + timedelta(days=i) for i in range(N_DAYS)]


@st.composite
def events(draw):
    """One random CERT event within the test range."""
    day = draw(st.integers(0, N_DAYS - 1))
    hour = draw(st.integers(0, 23))
    user = draw(st.sampled_from(USERS))
    timestamp = datetime(START.year, START.month, START.day + day, hour,
                         draw(st.integers(0, 59)))
    kind = draw(st.sampled_from(["device", "file", "http"]))
    if kind == "device":
        return DeviceEvent(
            timestamp, user,
            draw(st.sampled_from(["connect", "disconnect"])),
            draw(st.sampled_from(["H1", "H2", "H3"])),
        )
    if kind == "file":
        activity = draw(st.sampled_from(["open", "write", "copy", "delete"]))
        from_location = draw(st.sampled_from(["local", "remote"]))
        to_location = draw(st.sampled_from(["local", "remote"]))
        return FileEvent(
            timestamp, user, activity,
            draw(st.sampled_from(["f1", "f2", "f3", "f4"])),
            from_location=from_location if activity in ("open", "copy") else None,
            to_location=to_location if activity in ("write", "copy") else None,
        )
    activity = draw(st.sampled_from(["visit", "download", "upload"]))
    if activity == "visit":
        filetype = None
    else:
        filetype = draw(st.sampled_from(["zip", "doc", "other"]))
    return HttpEvent(
        timestamp, user, activity,
        draw(st.sampled_from(["a.com", "b.org"])),
        filetype=filetype,
    )


def batch_cube(event_list):
    store = LogStore()
    store.extend(event_list)
    return extract_cert_measurements(store, USERS, DAYS)


def run_ingest(records, lateness, cut=None):
    """Push records through an Ingestor; optional export/restore at cut."""
    config = IngestConfig(allowed_lateness_days=lateness, start_day=DAYS[0],
                          max_open_days=N_DAYS + 1)
    ingestor = Ingestor(SlabBuilder(USERS), None, config)
    sealed = {}
    for index, record in enumerate(records):
        if cut is not None and index == cut:
            doc, arrays = ingestor.export_state()
            doc = json.loads(json.dumps(doc))  # as the checkpoint would
            ingestor = Ingestor(SlabBuilder(USERS), None, config)
            ingestor.restore_state(doc, arrays)
        for result in ingestor.push(record.event, record.fingerprint):
            sealed[result.day] = result.slab
    for result in ingestor.flush(until=DAYS[-1]):
        sealed[result.day] = result.slab
    return sealed, ingestor


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    event_list=st.lists(events(), min_size=1, max_size=60),
    lateness=st.integers(0, 2),
    shuffle_seed=st.integers(0, 10_000),
    dup_seed=st.integers(0, 10_000),
)
def test_shuffle_lateness_duplicates_bit_identical(event_list, lateness,
                                                   shuffle_seed, dup_seed):
    cube = batch_cube(event_list)
    records = [ArrivalRecord(e, f"r{i}") for i, e in enumerate(event_list)]
    records = shuffled_arrival(records, seed=shuffle_seed, max_lateness_days=lateness)
    records = inject_duplicates(records, seed=dup_seed, fraction=0.2)

    sealed, ingestor = run_ingest(records, lateness)
    assert ingestor.events_late == 0  # bounded shuffle never produces lates
    assert ingestor.events_duplicate == len(records) - len(event_list)
    assert sorted(sealed) == DAYS
    for d, day in enumerate(DAYS):
        np.testing.assert_array_equal(sealed[day], cube.values[:, :, :, d])


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    event_list=st.lists(events(), min_size=2, max_size=40),
    shuffle_seed=st.integers(0, 10_000),
    cut_fraction=st.floats(0.0, 1.0),
)
def test_export_restore_at_any_cut_bit_identical(event_list, shuffle_seed,
                                                 cut_fraction):
    cube = batch_cube(event_list)
    records = [ArrivalRecord(e, f"r{i}") for i, e in enumerate(event_list)]
    records = shuffled_arrival(records, seed=shuffle_seed, max_lateness_days=1)
    cut = int(cut_fraction * len(records))

    sealed, _ = run_ingest(records, lateness=1, cut=cut)
    for d, day in enumerate(DAYS):
        np.testing.assert_array_equal(sealed[day], cube.values[:, :, :, d])
