"""Ingestor semantics: watermark, lateness policies, dedup, backpressure."""

import json
from datetime import date, datetime, timedelta

import numpy as np
import pytest

from repro.ingest import (
    IngestBackpressureError,
    IngestConfig,
    Ingestor,
    LateEventError,
    SealedSlab,
    SlabBuilder,
    WatermarkClock,
)
from repro.logs.schema import DeviceEvent
from repro.obs import Telemetry, set_telemetry

USERS = ["u0", "u1"]
D = date(2010, 3, 1)


def connect(day_offset, user="u0", host="H1", hour=10):
    day = D + timedelta(days=day_offset)
    return DeviceEvent(datetime(day.year, day.month, day.day, hour), user, "connect", host)


def make_ingestor(**overrides):
    defaults = dict(allowed_lateness_days=1, start_day=D)
    defaults.update(overrides)
    return Ingestor(SlabBuilder(USERS), None, IngestConfig(**defaults))


class TestWatermarkClock:
    def test_empty_clock_has_no_watermark(self):
        clock = WatermarkClock(1)
        assert clock.watermark is None
        assert clock.seal_through is None

    def test_watermark_trails_max_event_day(self):
        clock = WatermarkClock(2)
        clock.advance(D + timedelta(days=5))
        clock.advance(D + timedelta(days=3))  # monotone: no regression
        assert clock.max_event_day == D + timedelta(days=5)
        assert clock.watermark == D + timedelta(days=3)
        assert clock.seal_through == D + timedelta(days=2)

    def test_negative_lateness_rejected(self):
        with pytest.raises(ValueError):
            WatermarkClock(-1)


class TestConfigValidation:
    def test_policy_must_be_known(self):
        with pytest.raises(ValueError, match="late_policy"):
            IngestConfig(late_policy="vanish")

    def test_quarantine_path_pairing(self):
        with pytest.raises(ValueError, match="quarantine_path"):
            IngestConfig(late_policy="quarantine-file")
        with pytest.raises(ValueError, match="quarantine_path"):
            IngestConfig(late_policy="drop", quarantine_path="q.jsonl")

    def test_window_must_hold_watermark(self):
        with pytest.raises(ValueError, match="max_open_days"):
            IngestConfig(allowed_lateness_days=4, max_open_days=4)


class TestSealing:
    def test_day_seals_when_watermark_passes(self):
        ingestor = make_ingestor(allowed_lateness_days=0)
        assert ingestor.push(connect(0)) == []
        results = ingestor.push(connect(1))  # day 1 arrives: day 0 is final
        assert [r.day for r in results] == [D]
        assert isinstance(results[0], SealedSlab)
        assert results[0].n_records == 1

    def test_lateness_one_keeps_previous_day_open(self):
        ingestor = make_ingestor()
        assert ingestor.push(connect(0)) == []
        assert ingestor.push(connect(1)) == []  # day 0 may still trickle in
        results = ingestor.push(connect(2))
        assert [r.day for r in results] == [D]

    def test_gap_days_seal_as_zero_slabs(self):
        ingestor = make_ingestor(allowed_lateness_days=0)
        ingestor.push(connect(0))
        results = ingestor.push(connect(3))
        assert [r.day for r in results] == [D, D + timedelta(days=1), D + timedelta(days=2)]
        assert np.all(results[1].slab == 0.0)

    def test_out_of_order_within_tolerance_is_not_late(self):
        ingestor = make_ingestor()
        ingestor.push(connect(1))
        assert ingestor.push(connect(0)) == []  # one day behind: in tolerance
        assert ingestor.events_late == 0

    def test_flush_seals_through_max_event_day(self):
        ingestor = make_ingestor()
        ingestor.push(connect(0))
        ingestor.push(connect(1))
        results = ingestor.flush()
        assert [r.day for r in results] == [D, D + timedelta(days=1)]
        assert ingestor.cursor == D + timedelta(days=1)

    def test_flush_until_backfills_trailing_empty_days(self):
        ingestor = make_ingestor()
        ingestor.push(connect(0))
        results = ingestor.flush(until=D + timedelta(days=2))
        assert [r.day for r in results] == [D, D + timedelta(days=1), D + timedelta(days=2)]
        assert np.all(results[2].slab == 0.0)

    def test_flush_with_nothing_to_do(self):
        assert make_ingestor().flush() == []
        assert Ingestor(SlabBuilder(USERS)).flush() == []

    def test_events_before_start_day_are_late(self):
        ingestor = make_ingestor()
        ingestor.push(connect(-1))
        assert ingestor.events_late == 1


class TestLatePolicies:
    def _sealed_then_late(self, **overrides):
        ingestor = make_ingestor(allowed_lateness_days=0, **overrides)
        ingestor.push(connect(0))
        ingestor.push(connect(1))  # seals day 0
        return ingestor

    def test_drop_counts_and_discards(self):
        ingestor = self._sealed_then_late()
        assert ingestor.push(connect(0, host="H9")) == []
        assert ingestor.events_late == 1
        assert ingestor.events_pushed == 3

    def test_quarantine_file_appends_json_lines(self, tmp_path):
        quarantine = tmp_path / "late" / "q.jsonl"
        ingestor = self._sealed_then_late(
            late_policy="quarantine-file", quarantine_path=quarantine
        )
        ingestor.push(connect(0, host="H9"))
        ingestor.push(connect(0, host="H8"))
        rows = [json.loads(line) for line in quarantine.read_text().splitlines()]
        assert [row["host"] for row in rows] == ["H9", "H8"]
        assert all(row["type"] == "device" for row in rows)

    def test_raise_policy_does_not_consume(self):
        ingestor = self._sealed_then_late(late_policy="raise")
        before = ingestor.events_pushed
        with pytest.raises(LateEventError, match="sealed day"):
            ingestor.push(connect(0, host="H9"))
        assert ingestor.events_pushed == before
        assert ingestor.events_late == 0


class TestDedup:
    def test_same_fingerprint_collapses(self):
        ingestor = make_ingestor()
        ingestor.push(connect(0), "r1")
        ingestor.push(connect(0), "r1")
        assert ingestor.events_duplicate == 1
        assert ingestor.events_pushed == 2
        [result] = ingestor.flush()
        f = ingestor.builder.feature_set.index_of("device-connect")
        assert result.slab[0, f, 0] == 1.0

    def test_content_fingerprint_fallback(self):
        # Without an explicit fingerprint, identical events collapse.
        ingestor = make_ingestor()
        ingestor.push(connect(0))
        ingestor.push(connect(0))
        assert ingestor.events_duplicate == 1

    def test_distinct_fingerprints_do_not_collapse(self):
        ingestor = make_ingestor()
        ingestor.push(connect(0), "r1")
        ingestor.push(connect(0), "r2")
        assert ingestor.events_duplicate == 0


class TestBackpressure:
    def test_open_day_window_bound(self):
        ingestor = make_ingestor(allowed_lateness_days=1, max_open_days=2)
        ingestor.push(connect(0))
        with pytest.raises(IngestBackpressureError, match="max_open_days"):
            ingestor.push(connect(5))

    def test_buffered_events_bound_and_recovery(self):
        ingestor = make_ingestor(max_buffered_events=2)
        ingestor.push(connect(0), "r1")
        ingestor.push(connect(0, host="H2"), "r2")
        before = (ingestor.events_pushed, ingestor.cursor)
        with pytest.raises(IngestBackpressureError, match="max_buffered_events"):
            ingestor.push(connect(1), "r3")
        # Not consumed: counters and cursor untouched; flush() drains and
        # the same delivery then succeeds.
        assert (ingestor.events_pushed, ingestor.cursor) == before
        ingestor.flush()
        assert ingestor.push(connect(1), "r3") == []
        assert ingestor.events_pushed == 3


class TestTelemetry:
    def test_counters_flow(self):
        telemetry = Telemetry(enabled=True)
        set_telemetry(telemetry)
        try:
            ingestor = make_ingestor(allowed_lateness_days=0)
            ingestor.push(connect(0), "r1")
            ingestor.push(connect(0), "r1")  # duplicate
            ingestor.push(connect(1), "r2")  # seals day 0
            ingestor.push(connect(0), "r3")  # late
            metrics = telemetry.metrics.snapshot()
            assert metrics["counters"]["ingest.events"] == 4
            assert metrics["counters"]["ingest.events_duplicate"] == 1
            assert metrics["counters"]["ingest.events_late"] == 1
            assert metrics["counters"]["ingest.days_sealed"] == 1
            assert metrics["histograms"]["ingest.seal_latency_seconds"]["count"] == 1
            assert metrics["gauges"]["ingest.open_days"] == 1
        finally:
            set_telemetry(Telemetry(enabled=False))


class TestDetectorMismatch:
    def test_user_axis_must_match(self):
        class FakeDetector:
            users = ["someone-else"]

        with pytest.raises(ValueError, match="user axis"):
            Ingestor(SlabBuilder(USERS), FakeDetector(), IngestConfig())
