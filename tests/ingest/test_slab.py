"""SlabBuilder / CertSlabAccumulator: incremental counting semantics."""

from datetime import date, datetime

import numpy as np
import pytest

from repro.features.cert import CertSlabAccumulator, extract_cert_measurements
from repro.ingest import SlabBuilder, arrival_order, shuffled_arrival
from repro.logs.schema import DeviceEvent, FileEvent, HttpEvent, LogonEvent
from repro.logs.store import LogStore

USERS = ["u0", "u1"]


def feature_index(builder, name):
    return builder.feature_set.index_of(name)


def day_connect(day, user="u0", host="H1", hour=10):
    return DeviceEvent(datetime(2010, 3, day, hour), user, "connect", host)


class TestAccumulatorSemantics:
    def test_raw_count_increments_per_event(self):
        acc = CertSlabAccumulator(USERS)
        acc.add(day_connect(1))
        acc.add(day_connect(1))
        slab = acc.seal(date(2010, 3, 1))
        f = acc.feature_set.index_of("device-connect")
        assert slab[0, f, 0] == 2.0

    def test_intra_day_repeats_each_count_as_new(self):
        # The paper's novelty definition: "never conducted before day d";
        # repeats within day d itself all count.
        acc = CertSlabAccumulator(USERS)
        acc.add(day_connect(1))
        acc.add(day_connect(1))
        slab = acc.seal(date(2010, 3, 1))
        f = acc.feature_set.index_of("device-new-host")
        assert slab[0, f, 0] == 2.0

    def test_novelty_commits_at_seal(self):
        acc = CertSlabAccumulator(USERS)
        acc.add(day_connect(1))
        acc.seal(date(2010, 3, 1))
        acc.add(day_connect(2))  # same host, next day: no longer new
        slab = acc.seal(date(2010, 3, 2))
        f = acc.feature_set.index_of("device-new-host")
        assert slab[0, f, 0] == 0.0

    def test_novelty_is_per_user(self):
        acc = CertSlabAccumulator(USERS)
        acc.add(day_connect(1, user="u0"))
        acc.seal(date(2010, 3, 1))
        acc.add(day_connect(2, user="u1"))  # new for u1 even if u0 saw it
        slab = acc.seal(date(2010, 3, 2))
        f = acc.feature_set.index_of("device-new-host")
        assert slab[1, f, 0] == 1.0

    def test_disconnect_and_unknown_user_ignored(self):
        acc = CertSlabAccumulator(USERS)
        assert not acc.add(
            DeviceEvent(datetime(2010, 3, 1, 10), "u0", "disconnect", "H1")
        )
        assert not acc.add(day_connect(1, user="stranger"))
        assert np.all(acc.seal(date(2010, 3, 1)) == 0.0)

    def test_untracked_event_types_ignored(self):
        acc = CertSlabAccumulator(USERS)
        assert not acc.add(LogonEvent(datetime(2010, 3, 1, 9), "u0", "logon", "PC-1"))

    def test_file_direction_and_new_op(self):
        acc = CertSlabAccumulator(USERS)
        acc.add(FileEvent(datetime(2010, 3, 1, 10), "u0", "open", "f1",
                          from_location="remote"))
        slab = acc.seal(date(2010, 3, 1))
        assert slab[0, acc.feature_set.index_of("file-open-from-remote"), 0] == 1.0
        assert slab[0, acc.feature_set.index_of("file-new-op"), 0] == 1.0

    def test_http_upload_pair_and_new_op(self):
        acc = CertSlabAccumulator(USERS)
        acc.add(HttpEvent(datetime(2010, 3, 1, 10), "u0", "upload", "evil.com",
                          filetype="zip"))
        slab = acc.seal(date(2010, 3, 1))
        assert slab[0, acc.feature_set.index_of("http-upload-zip"), 0] == 1.0
        assert slab[0, acc.feature_set.index_of("http-new-op"), 0] == 1.0

    def test_off_hours_land_in_second_frame(self):
        acc = CertSlabAccumulator(USERS)
        acc.add(day_connect(1, hour=22))
        slab = acc.seal(date(2010, 3, 1))
        assert slab[0, acc.feature_set.index_of("device-connect"), 1] == 1.0

    def test_add_to_sealed_day_raises(self):
        acc = CertSlabAccumulator(USERS)
        acc.seal(date(2010, 3, 1))
        with pytest.raises(ValueError, match="already sealed"):
            acc.add(day_connect(1))

    def test_seal_out_of_order_raises(self):
        acc = CertSlabAccumulator(USERS)
        acc.add(day_connect(1))
        acc.add(day_connect(2))
        with pytest.raises(ValueError, match="day order"):
            acc.seal(date(2010, 3, 2))

    def test_empty_day_seals_to_zero_slab(self):
        acc = CertSlabAccumulator(USERS)
        slab = acc.seal(date(2010, 3, 1))
        assert slab.shape == (2, len(acc.feature_set), 2)
        assert np.all(slab == 0.0)


class TestBuilderDedup:
    def test_duplicate_fingerprint_rejected(self):
        builder = SlabBuilder(USERS)
        assert builder.add(day_connect(1), "r1")
        assert not builder.add(day_connect(1), "r1")
        slab = builder.seal(date(2010, 3, 1))
        assert slab[0, feature_index(builder, "device-connect"), 0] == 1.0

    def test_identical_events_with_distinct_fingerprints_both_count(self):
        # Fingerprints identify deliveries, not content: real logs hold
        # naturally identical events and both must count (bit-identity
        # with the batch extractor depends on it).
        builder = SlabBuilder(USERS)
        assert builder.add(day_connect(1), "r1")
        assert builder.add(day_connect(1), "r2")
        slab = builder.seal(date(2010, 3, 1))
        assert slab[0, feature_index(builder, "device-connect"), 0] == 2.0

    def test_buffered_record_accounting(self):
        builder = SlabBuilder(USERS)
        builder.add(day_connect(1), "r1")
        builder.add(day_connect(2), "r2")
        builder.add(day_connect(2), "r2")  # duplicate: not re-counted
        assert builder.buffered_records == 2
        assert builder.records_in(date(2010, 3, 1)) == 1
        builder.seal(date(2010, 3, 1))
        assert builder.buffered_records == 1

    def test_untracked_event_fingerprint_still_recorded(self):
        builder = SlabBuilder(USERS)
        event = LogonEvent(datetime(2010, 3, 1, 9), "u0", "logon", "PC-1")
        assert builder.add(event, "r1")
        assert builder.is_duplicate(date(2010, 3, 1), "r1")

    def test_add_to_sealed_day_raises_even_for_untracked(self):
        builder = SlabBuilder(USERS)
        builder.seal(date(2010, 3, 1))
        with pytest.raises(ValueError, match="already sealed"):
            builder.add(LogonEvent(datetime(2010, 3, 1, 9), "u0", "logon", "PC-1"), "r1")


class TestOrderIndependence:
    def test_shuffled_within_window_matches_batch_extractor(self, tiny_dataset, tiny_org,
                                                            tiny_calendar):
        users = tiny_org.user_ids()
        days = tiny_calendar.days()
        cube = extract_cert_measurements(tiny_dataset.store, users, days)

        records = shuffled_arrival(
            arrival_order(tiny_dataset.store), seed=17, max_lateness_days=1
        )
        builder = SlabBuilder(users)
        sealed = {}
        watermark = 1
        for record in records:
            day = record.event.day
            # Seal everything the 1-day watermark allows before adding.
            for open_day in list(builder.open_days()):
                if (day - open_day).days > watermark:
                    sealed[open_day] = builder.seal(open_day)
            builder.add(record.event, record.fingerprint)
        for open_day in builder.open_days():
            sealed[open_day] = builder.seal(open_day)

        for d, day in enumerate(days):
            expected = cube.values[:, :, :, d]
            got = sealed.get(day)
            if got is None:
                assert np.all(expected == 0.0)
            else:
                np.testing.assert_array_equal(got, expected)


class TestStateRoundTrip:
    def test_export_restore_is_exact(self):
        builder = SlabBuilder(USERS)
        builder.add(day_connect(1), "r1")
        builder.seal(date(2010, 3, 1))
        builder.add(day_connect(2, host="H2"), "r2")
        builder.add(FileEvent(datetime(2010, 3, 2, 23), "u1", "copy", "f9",
                              from_location="local", to_location="remote"), "r3")
        doc, arrays = builder.export_state()

        import json

        doc = json.loads(json.dumps(doc))  # must survive a JSON round-trip
        clone = SlabBuilder(USERS)
        clone.restore_state(doc, arrays)
        assert clone.buffered_records == builder.buffered_records
        assert clone.open_days() == builder.open_days()
        assert clone.is_duplicate(date(2010, 3, 2), "r2")
        np.testing.assert_array_equal(
            clone.seal(date(2010, 3, 2)), builder.seal(date(2010, 3, 2))
        )

    def test_restore_rejects_different_users(self):
        builder = SlabBuilder(USERS)
        doc, arrays = builder.export_state()
        other = SlabBuilder(["x0", "x1"])
        with pytest.raises(ValueError, match="different user list"):
            other.restore_state(doc, arrays)
