"""Ingest checkpoint: mid-day kill-and-resume bit-identity, fault drills."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.checkpoint import (
    CheckpointCorruptionError,
    CheckpointMismatchError,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.detector import CompoundBehaviorModel, ModelConfig
from repro.core.streaming import DailyResult, StreamingDetector
from repro.features.cert import extract_cert_measurements
from repro.ingest import (
    INGEST_STATE_FILE,
    IngestConfig,
    Ingestor,
    SlabBuilder,
    arrival_order,
    resume_ingest,
    save_ingest_checkpoint,
    shuffled_arrival,
)
from repro.nn.autoencoder import AutoencoderConfig
from repro.testing.faults import flip_bit, transient_io_errors

TINY_AE = AutoencoderConfig(
    encoder_units=(8, 4),
    epochs=2,
    batch_size=16,
    optimizer="adam",
    early_stopping_patience=None,
    validation_split=0.0,
    seed=1,
)

LATENESS = 1


@pytest.fixture(scope="module")
def setup(tiny_dataset, tiny_org, tiny_calendar):
    users = tiny_org.user_ids()
    days = tiny_calendar.days()
    cube = extract_cert_measurements(tiny_dataset.store, users, days)
    model = CompoundBehaviorModel(
        ModelConfig(window=5, matrix_days=5, critic_n=2, autoencoder=TINY_AE)
    )
    group_map = tiny_org.group_map()
    model.fit(cube, group_map, days[:35])
    records = shuffled_arrival(arrival_order(tiny_dataset.store), seed=9,
                               max_lateness_days=LATENESS)
    return {
        "users": users,
        "days": days,
        "model": model,
        "group_map": group_map,
        "records": records,
    }


def fresh_ingestor(setup):
    stream = StreamingDetector(setup["model"], setup["users"], setup["group_map"])
    config = IngestConfig(allowed_lateness_days=LATENESS, start_day=setup["days"][0])
    return Ingestor(SlabBuilder(setup["users"]), stream, config)


def run_all(setup, ingestor, skip=0):
    results = []
    for index, record in enumerate(setup["records"]):
        if index < skip:
            continue
        results.extend(ingestor.push(record.event, record.fingerprint))
    results.extend(ingestor.flush(until=setup["days"][-1]))
    return results


def assert_results_equal(got, expected):
    assert [r.day for r in got] == [r.day for r in expected]
    for a, b in zip(got, expected):
        assert isinstance(a, DailyResult) and isinstance(b, DailyResult)
        assert a.scores.keys() == b.scores.keys()
        for aspect in a.scores:
            np.testing.assert_array_equal(a.scores[aspect], b.scores[aspect])
        assert [(e.user, e.priority) for e in a.investigation.entries] == [
            (e.user, e.priority) for e in b.investigation.entries
        ]


@pytest.fixture(scope="module")
def uninterrupted(setup):
    return run_all(setup, fresh_ingestor(setup))


class TestKillAndResume:
    def test_mid_day_kill_resume_bit_identical(self, setup, uninterrupted, tmp_path):
        cut = int(len(setup["records"]) * 0.6)
        ingestor = fresh_ingestor(setup)
        results = []
        for record in setup["records"][:cut]:
            results.extend(ingestor.push(record.event, record.fingerprint))
        # The cut must land mid-day for the test to mean anything: the
        # checkpoint has to carry partial slabs and pending novelties.
        assert ingestor.builder.open_days(), "cut landed on a day boundary"
        save_ingest_checkpoint(ingestor, tmp_path / "ckpt")

        resumed = resume_ingest(setup["model"], tmp_path / "ckpt")
        assert resumed.events_pushed == cut
        assert resumed.cursor == ingestor.cursor
        results.extend(run_all(setup, resumed, skip=resumed.events_pushed))
        assert_results_equal(results, uninterrupted)

    def test_redelivery_after_resume_is_idempotent(self, setup, uninterrupted, tmp_path):
        # An at-least-once replayer may re-send records the killed run
        # already consumed; restored fingerprints absorb re-deliveries
        # of still-open days, late-policy drop absorbs the sealed ones.
        cut = int(len(setup["records"]) * 0.6)
        ingestor = fresh_ingestor(setup)
        results = []
        for record in setup["records"][:cut]:
            results.extend(ingestor.push(record.event, record.fingerprint))
        save_ingest_checkpoint(ingestor, tmp_path / "ckpt")

        resumed = resume_ingest(setup["model"], tmp_path / "ckpt")
        overlap = 50  # replay the last records before the cut again
        results.extend(run_all(setup, resumed, skip=cut - overlap))
        assert_results_equal(results, uninterrupted)
        assert resumed.events_duplicate + resumed.events_late >= overlap

    def test_counters_survive_resume(self, setup, tmp_path):
        cut = 500
        ingestor = fresh_ingestor(setup)
        for record in setup["records"][:cut]:
            ingestor.push(record.event, record.fingerprint)
        save_ingest_checkpoint(ingestor, tmp_path / "ckpt")
        resumed = resume_ingest(setup["model"], tmp_path / "ckpt")
        assert resumed.events_pushed == ingestor.events_pushed
        assert resumed.days_sealed == ingestor.days_sealed
        assert resumed.detector.days_observed == ingestor.detector.days_observed


class TestMismatches:
    def test_plain_stream_checkpoint_rejected(self, setup, tmp_path):
        stream = StreamingDetector(setup["model"], setup["users"], setup["group_map"])
        save_checkpoint(stream, tmp_path / "ckpt")
        with pytest.raises(CheckpointMismatchError, match="no ingest cursor"):
            resume_ingest(setup["model"], tmp_path / "ckpt")

    def test_changed_lateness_rejected(self, setup, tmp_path):
        ingestor = fresh_ingestor(setup)
        ingestor.push(setup["records"][0].event, setup["records"][0].fingerprint)
        save_ingest_checkpoint(ingestor, tmp_path / "ckpt")
        with pytest.raises(CheckpointMismatchError, match="allowed_lateness_days"):
            resume_ingest(
                setup["model"], tmp_path / "ckpt",
                config=replace(ingestor.config, allowed_lateness_days=LATENESS + 1),
            )

    def test_operational_knobs_may_change(self, setup, tmp_path):
        ingestor = fresh_ingestor(setup)
        ingestor.push(setup["records"][0].event, setup["records"][0].fingerprint)
        save_ingest_checkpoint(ingestor, tmp_path / "ckpt")
        resumed = resume_ingest(
            setup["model"], tmp_path / "ckpt",
            config=replace(ingestor.config, max_open_days=30),
        )
        assert resumed.config.max_open_days == 30

    def test_dataset_binding_mismatch_rejected(self, setup, tmp_path):
        ingestor = fresh_ingestor(setup)
        ingestor.push(setup["records"][0].event, setup["records"][0].fingerprint)
        save_ingest_checkpoint(
            ingestor, tmp_path / "ckpt",
            extra_manifest={"dataset": {"preset": "small", "seed": 7}},
        )
        with pytest.raises(CheckpointMismatchError, match="dataset"):
            resume_ingest(
                setup["model"], tmp_path / "ckpt",
                expected_manifest={"dataset": {"preset": "small", "seed": 8}},
            )

    def test_detector_config_mismatch_rejected(self, setup, tmp_path):
        ingestor = fresh_ingestor(setup)
        save_ingest_checkpoint(ingestor, tmp_path / "ckpt")
        other = CompoundBehaviorModel(
            ModelConfig(window=7, matrix_days=5, critic_n=2, autoencoder=TINY_AE)
        )
        with pytest.raises(CheckpointMismatchError, match="digest"):
            resume_ingest(other, tmp_path / "ckpt")


@pytest.mark.faults
class TestFaultDrills:
    def test_transient_io_errors_retried(self, setup, tmp_path):
        ingestor = fresh_ingestor(setup)
        for record in setup["records"][:200]:
            ingestor.push(record.event, record.fingerprint)
        with transient_io_errors(2, path_substring="state_ingest") as stats:
            save_ingest_checkpoint(ingestor, tmp_path / "ckpt", retries=3)
        assert stats["injected"] == 2
        resumed = resume_ingest(setup["model"], tmp_path / "ckpt")
        assert resumed.events_pushed == 200

    def test_corrupt_ingest_sidecar_detected(self, setup, tmp_path):
        ingestor = fresh_ingestor(setup)
        for record in setup["records"][:200]:
            ingestor.push(record.event, record.fingerprint)
        save_ingest_checkpoint(ingestor, tmp_path / "ckpt")
        flip_bit(tmp_path / "ckpt" / INGEST_STATE_FILE)
        with pytest.raises(CheckpointCorruptionError, match="checksum mismatch"):
            load_checkpoint(tmp_path / "ckpt")
        with pytest.raises(CheckpointCorruptionError):
            resume_ingest(setup["model"], tmp_path / "ckpt")
