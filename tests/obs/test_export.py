"""Metric exporters: Prometheus rendering, JSONL flushes, durable counters."""

import json
from datetime import date, timedelta

import numpy as np
import pytest

from repro.obs import MetricsExporter, Telemetry, render_prometheus


class TestRenderPrometheus:
    def test_counter_gauge_histogram_families(self):
        t = Telemetry(enabled=True)
        t.counter("stream.days_total").inc(3)
        t.gauge("pool.workers").set(2)
        for v in (0.1, 0.2, 0.3, 0.4):
            t.histogram("day_seconds").observe(v)
        snap = t.metrics.snapshot()
        text = render_prometheus(snap["counters"], snap["gauges"], snap["histograms"])
        assert "# TYPE acobe_stream_days_total counter" in text
        assert "acobe_stream_days_total 3" in text
        assert "# TYPE acobe_pool_workers gauge" in text
        assert "acobe_pool_workers 2.0" in text
        assert "# TYPE acobe_day_seconds summary" in text
        assert 'acobe_day_seconds{quantile="0.5"}' in text
        assert 'acobe_day_seconds{quantile="0.95"}' in text
        assert 'acobe_day_seconds{quantile="0.99"}' in text
        assert "acobe_day_seconds_count 4" in text
        assert text.endswith("\n")

    def test_durable_counters_render_as_gauges(self):
        text = render_prometheus({}, {}, {}, durable={"stream.days_observed": 7})
        assert "# TYPE acobe_stream_days_observed gauge" in text
        assert "acobe_stream_days_observed 7.0" in text
        assert "checkpoint-backed" in text

    def test_names_are_sanitized_and_non_finite_gauges_skipped(self):
        text = render_prometheus(
            {"a.b-c/d": 1},
            {"bad": float("nan"), "worse": float("inf"), "none": None, "ok": 2.0},
            {},
        )
        assert "acobe_a_b_c_d 1" in text
        assert "bad" not in text and "worse" not in text and "none" not in text
        assert "acobe_ok 2.0" in text

    def test_empty_histogram_renders_zero_count_only(self):
        text = render_prometheus({}, {}, {"h": {"values": [], "count": 0}})
        assert "acobe_h_count 0" in text
        assert "quantile" not in text


class TestMetricsExporter:
    def test_rejects_bad_cadence(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            MetricsExporter(tmp_path, every=0)

    def test_tick_flushes_on_cadence(self, tmp_path):
        t = Telemetry(enabled=True)
        exporter = MetricsExporter(tmp_path, every=3)
        flushed = [exporter.tick(t) for _ in range(7)]
        assert flushed == [False, False, True, False, False, True, False]
        lines = exporter.jsonl_path.read_text().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["seq"] for line in lines] == [0, 1]

    def test_flush_writes_both_formats(self, tmp_path):
        t = Telemetry(enabled=True)
        t.counter("c").inc(2)
        t.histogram("h").observe(1.5)
        exporter = MetricsExporter(tmp_path)
        document = exporter.flush(t, durable={"stream.days_observed": 4})
        assert document["counters"] == {"c": 2}
        assert document["histograms"]["h"]["count"] == 1
        assert document["durable"] == {"stream.days_observed": 4.0}
        assert document["run_id"] == t.run_id
        prom = exporter.prom_path.read_text()
        assert "acobe_c 2" in prom
        assert "acobe_stream_days_observed 4.0" in prom
        on_disk = json.loads(exporter.jsonl_path.read_text())
        assert on_disk == document

    def test_prom_file_is_replaced_not_appended(self, tmp_path):
        t = Telemetry(enabled=True)
        exporter = MetricsExporter(tmp_path)
        t.counter("c").inc()
        exporter.flush(t)
        t.counter("c").inc()
        exporter.flush(t)
        prom = exporter.prom_path.read_text()
        value_lines = [l for l in prom.splitlines() if l.startswith("acobe_c ")]
        assert value_lines == ["acobe_c 2"]
        # No leftover temp files from the atomic replace.
        assert [p.name for p in tmp_path.iterdir() if p.name.startswith(".metrics-")] == []


@pytest.fixture(scope="module")
def stream_parts():
    """A tiny fitted model + cube, enough for a full streaming run."""
    from repro.core.detector import CompoundBehaviorModel, ModelConfig
    from repro.features.measurements import MeasurementCube
    from repro.features.spec import AspectSpec, FeatureSet, FeatureSpec
    from repro.nn.autoencoder import AutoencoderConfig
    from repro.utils.timeutil import TWO_TIMEFRAMES

    fs = FeatureSet(
        [
            AspectSpec("a", (FeatureSpec("f1", "a"), FeatureSpec("f2", "a"))),
            AspectSpec("b", (FeatureSpec("f3", "b"),)),
        ]
    )
    users = [f"u{i}" for i in range(6)]
    n_days = 30
    days = [date(2010, 1, 1) + timedelta(days=i) for i in range(n_days)]
    values = np.random.default_rng(7).poisson(5.0, size=(6, 3, 2, n_days)).astype(float)
    cube = MeasurementCube(values, users, fs, TWO_TIMEFRAMES, days)
    group_map = {u: ("g1" if i < 3 else "g2") for i, u in enumerate(users)}
    ae = AutoencoderConfig(
        encoder_units=(8, 4), epochs=2, batch_size=16,
        early_stopping_patience=None, validation_split=0.0, seed=1,
    )
    model = CompoundBehaviorModel(
        ModelConfig(window=5, matrix_days=5, critic_n=2, autoencoder=ae)
    )
    model.fit(cube, group_map, days[:20])
    return model, cube, group_map, days


def _fresh_stream(stream_parts):
    from repro.core.streaming import StreamingDetector

    model, cube, group_map, _ = stream_parts
    return StreamingDetector(model, cube.users, group_map)


class TestStreamingIntegration:
    def test_exporter_ticks_once_per_observed_day(self, tmp_path, stream_parts):
        model, cube, group_map, days = stream_parts
        stream = _fresh_stream(stream_parts)
        exporter = MetricsExporter(tmp_path, every=1)
        stream.attach_exporter(exporter)
        for d, day in enumerate(days):
            stream.observe_day(day, cube.values[:, :, :, d])
        assert exporter.ticks == len(days)
        last = json.loads(exporter.jsonl_path.read_text().splitlines()[-1])
        assert last["durable"]["stream.days_observed"] == float(len(days))

    def test_attachments_do_not_perturb_scores(self, tmp_path, stream_parts):
        """Bit-identity: a monitored run scores exactly like a bare one."""
        from repro.core.streaming import DailyResult
        from repro.obs.drift import DriftConfig, ScoreDriftMonitor

        model, cube, group_map, days = stream_parts
        bare = _fresh_stream(stream_parts)
        monitored = _fresh_stream(stream_parts)
        monitored.attach_exporter(MetricsExporter(tmp_path, every=1))
        monitored.attach_drift_monitor(
            ScoreDriftMonitor(DriftConfig(reference_days=3, current_days=1))
        )
        for d, day in enumerate(days):
            a = bare.observe_day(day, cube.values[:, :, :, d])
            b = monitored.observe_day(day, cube.values[:, :, :, d])
            assert isinstance(a, DailyResult) == isinstance(b, DailyResult)
            if isinstance(a, DailyResult):
                for aspect in a.scores:
                    np.testing.assert_array_equal(a.scores[aspect], b.scores[aspect])

    def test_kill_and_resume_durable_counters_match_uninterrupted(
        self, tmp_path, stream_parts
    ):
        """The acceptance contract: after a kill at any point, the resumed
        run's final durable export equals the uninterrupted run's."""
        model, cube, group_map, days = stream_parts

        full = _fresh_stream(stream_parts)
        full_exporter = MetricsExporter(tmp_path / "full", every=1)
        full.attach_exporter(full_exporter)
        for d, day in enumerate(days):
            full.observe_day(day, cube.values[:, :, :, d])
        full_final = json.loads(
            full_exporter.jsonl_path.read_text().splitlines()[-1]
        )

        kill_at = 13
        first = _fresh_stream(stream_parts)
        first.attach_exporter(MetricsExporter(tmp_path / "first", every=1))
        for d in range(kill_at):
            first.observe_day(days[d], cube.values[:, :, :, d])
        state = first.export_state()  # what the checkpoint persists

        resumed = _fresh_stream(stream_parts)  # fresh process: telemetry reset
        resumed.restore_state(state)
        resumed_exporter = MetricsExporter(tmp_path / "resumed", every=1)
        resumed.attach_exporter(resumed_exporter)
        for d in range(kill_at, len(days)):
            resumed.observe_day(days[d], cube.values[:, :, :, d])
        resumed_final = json.loads(
            resumed_exporter.jsonl_path.read_text().splitlines()[-1]
        )

        assert resumed_final["durable"] == full_final["durable"]
        assert resumed_final["durable"]["stream.days_observed"] == float(len(days))
