"""Structured JSON-lines logging: sinks, trace propagation, worker merge."""

import io
import json

import pytest

from repro.obs import Telemetry
from repro.obs.log import (
    JsonlLogSink,
    attach_log_sink,
    detach_log_sink,
    open_structured_log,
    read_log_jsonl,
)


class TestJsonlLogSink:
    def test_writes_one_sorted_json_object_per_line(self, tmp_path):
        path = tmp_path / "logs" / "run.jsonl"  # parent dir created on demand
        with JsonlLogSink(path) as sink:
            sink.write({"event": "b", "a": 1})
            sink.write({"event": "c"})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"a": 1, "event": "b"}
        assert sink.records_written == 2

    def test_accepts_a_writable_stream(self):
        stream = io.StringIO()
        sink = JsonlLogSink(stream)
        sink.write({"event": "x"})
        sink.close()  # must not close a caller-owned stream
        assert json.loads(stream.getvalue()) == {"event": "x"}

    def test_non_json_values_are_stringified(self, tmp_path):
        from datetime import date

        path = tmp_path / "run.jsonl"
        with JsonlLogSink(path) as sink:
            sink.write({"event": "day", "day": date(2010, 3, 1)})
        assert read_log_jsonl(path)[0]["day"] == "2010-03-01"


class TestLogEvents:
    def test_disabled_telemetry_emits_nothing(self, tmp_path):
        t = Telemetry(enabled=False)
        sink = attach_log_sink(t, tmp_path / "run.jsonl")
        t.log_event("anything", key="value")
        assert sink.records_written == 0

    def test_no_sink_no_capture_drops_records(self):
        t = Telemetry(enabled=True)
        t.log_event("orphan")
        assert t.log_records == []

    def test_records_carry_identity_and_fields(self, tmp_path):
        t = Telemetry(enabled=True)
        path = tmp_path / "run.jsonl"
        with open_structured_log(t, path):
            with t.span("detector.fit"):
                t.log_event("checkpoint.saved", level="info", day="2010-03-01")
        records = read_log_jsonl(path)
        events = [r["event"] for r in records]
        assert events == ["span.start", "checkpoint.saved", "span.end"]
        saved = records[1]
        assert saved["run_id"] == t.run_id
        assert saved["day"] == "2010-03-01"
        assert saved["level"] == "info"
        # The open span's identity is stamped on the record.
        assert saved["trace_id"] == records[0]["trace_id"]
        assert saved["span_id"] == records[0]["span_id"]
        assert saved["ts"] > 0

    def test_sink_detaches_on_context_exit(self, tmp_path):
        t = Telemetry(enabled=True)
        with open_structured_log(t, tmp_path / "run.jsonl"):
            assert t.log_sink is not None
        assert t.log_sink is None

    def test_attach_drains_buffered_records(self, tmp_path):
        t = Telemetry(enabled=True)
        t.capture_logs = True
        t.log_event("early", n=1)
        sink = attach_log_sink(t, tmp_path / "run.jsonl")
        assert sink.records_written == 1
        assert t.log_records == []
        detach_log_sink(t)
        sink.close()


class TestTracePropagation:
    def test_root_span_starts_a_trace(self):
        t = Telemetry(enabled=True)
        with t.span("root"):
            pass
        record = t.spans[0]
        assert record.span_id is not None
        assert record.trace_id == record.span_id
        assert record.parent_span_id is None

    def test_children_share_the_root_trace(self):
        t = Telemetry(enabled=True)
        with t.span("root"):
            with t.span("child"):
                with t.span("leaf"):
                    pass
        root = t.spans[0]
        child = root.children[0]
        leaf = child.children[0]
        assert child.trace_id == root.trace_id == leaf.trace_id
        assert child.parent_span_id == root.span_id
        assert leaf.parent_span_id == child.span_id
        assert len({root.span_id, child.span_id, leaf.span_id}) == 3

    def test_sibling_roots_start_distinct_traces(self):
        t = Telemetry(enabled=True)
        with t.span("day1"):
            pass
        with t.span("day2"):
            pass
        assert t.spans[0].trace_id != t.spans[1].trace_id

    def test_parent_context_continues_the_trace(self):
        # A worker telemetry built from the parent's current_context()
        # roots its spans under the parent's open span.
        parent = Telemetry(enabled=True)
        with parent.span("parallel.train_ensemble"):
            context = parent.current_context()
            worker = Telemetry(
                enabled=True,
                run_id=parent.run_id,
                parent_context={k: v for k, v in context.items() if k != "run_id"},
            )
            with worker.span("train.aspect"):
                pass
            parent.merge(worker.snapshot())
        ensemble = parent.spans[0]
        aspect = ensemble.children[0]
        assert worker.run_id == parent.run_id
        assert aspect.trace_id == ensemble.trace_id
        assert aspect.parent_span_id == ensemble.span_id

    def test_span_ids_round_trip_through_snapshot(self):
        t = Telemetry(enabled=True)
        with t.span("a"):
            with t.span("b"):
                pass
        clone = Telemetry(enabled=True)
        clone.merge(t.snapshot())
        merged = clone.spans[0]
        assert merged.trace_id == t.spans[0].trace_id
        assert merged.children[0].parent_span_id == t.spans[0].span_id


class TestWorkerLogTransport:
    def test_worker_logs_travel_in_the_snapshot(self, tmp_path):
        parent = Telemetry(enabled=True)
        path = tmp_path / "run.jsonl"
        sink = attach_log_sink(parent, path)

        worker = Telemetry(enabled=True, run_id=parent.run_id)
        worker.capture_logs = True  # what _train_in_worker sets from the parent
        worker.log_event("train.epoch", epoch=1)

        parent.merge(worker.snapshot())
        detach_log_sink(parent)
        sink.close()
        records = read_log_jsonl(path)
        assert [r["event"] for r in records] == ["train.epoch"]
        assert records[0]["run_id"] == parent.run_id

    def test_log_buffer_is_bounded(self):
        from repro.obs.telemetry import LOG_BUFFER_CAP

        t = Telemetry(enabled=True)
        t.capture_logs = True
        t.log_records = [{"event": "x"}] * LOG_BUFFER_CAP
        t.log_event("overflow")
        assert len(t.log_records) == LOG_BUFFER_CAP
        assert t.logs_dropped == 1

    def test_end_to_end_parallel_training_shares_one_run_id(self, tmp_path):
        """Ensemble fan-out: every log record carries the parent run_id."""
        import numpy as np

        from repro.nn.autoencoder import AutoencoderConfig
        from repro.nn.parallel import AspectTask, train_ensemble
        from repro.obs import get_telemetry, set_telemetry

        rng = np.random.default_rng(0)
        config = AutoencoderConfig(encoder_units=(4,), epochs=1, batch_size=8, seed=1)
        tasks = [
            AspectTask(name=f"a{i}", data=rng.normal(size=(16, 6)), config=config)
            for i in range(2)
        ]
        parent = Telemetry(enabled=True)
        path = tmp_path / "run.jsonl"
        sink = attach_log_sink(parent, path)
        previous = set_telemetry(parent)
        try:
            with parent.span("detector.fit"):
                train_ensemble(tasks, n_jobs=2)
        finally:
            set_telemetry(previous)
            detach_log_sink(parent)
            sink.close()
        records = read_log_jsonl(path)
        assert records, "expected span events in the structured log"
        assert {r["run_id"] for r in records} == {parent.run_id}
        # Every aspect's span tree hangs off the one detector.fit trace.
        fit_trace = records[0]["trace_id"]
        aspect_records = [r for r in records if r.get("span") == "train.aspect"]
        assert len(aspect_records) >= 2
        assert {r["trace_id"] for r in aspect_records} == {fit_trace}
