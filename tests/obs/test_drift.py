"""Drift monitors: PSI/KS math, fire-once alert semantics, quality rates."""

import random

import pytest

from repro.obs.drift import (
    DriftConfig,
    IngestQualityConfig,
    IngestQualityMonitor,
    ScoreDriftMonitor,
    ks_statistic,
    population_stability_index,
)
from repro.obs.report import validate_alert


class TestStatistics:
    def test_psi_near_zero_for_same_distribution(self):
        rng = random.Random(0)
        a = [rng.gauss(0, 1) for _ in range(2000)]
        b = [rng.gauss(0, 1) for _ in range(2000)]
        assert population_stability_index(a, b) < 0.05

    def test_psi_large_for_shifted_distribution(self):
        rng = random.Random(0)
        a = [rng.gauss(0, 1) for _ in range(2000)]
        b = [rng.gauss(3, 1) for _ in range(2000)]
        assert population_stability_index(a, b) > 1.0

    def test_psi_constant_reference_degrades_to_zero(self):
        assert population_stability_index([1.0] * 100, [1.0] * 50) == 0.0

    def test_psi_rejects_empty_and_bad_bins(self):
        with pytest.raises(ValueError, match="non-empty"):
            population_stability_index([], [1.0])
        with pytest.raises(ValueError, match="bins"):
            population_stability_index([1.0, 2.0], [1.0], bins=1)

    def test_ks_bounds_and_known_values(self):
        assert ks_statistic([1, 2, 3], [1, 2, 3]) == 0.0
        # Fully separated samples: the ECDFs never overlap.
        assert ks_statistic([0, 1, 2], [10, 11, 12]) == 1.0
        rng = random.Random(1)
        a = [rng.gauss(0, 1) for _ in range(1000)]
        b = [rng.gauss(0, 1) for _ in range(1000)]
        assert ks_statistic(a, b) < 0.1

    def test_ks_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            ks_statistic([], [1.0])


class TestDriftConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="reference_days"):
            DriftConfig(reference_days=0)
        with pytest.raises(ValueError, match="current_days"):
            DriftConfig(current_days=0)
        with pytest.raises(ValueError, match="psi_threshold"):
            DriftConfig(psi_threshold=0)
        with pytest.raises(ValueError, match="bins"):
            DriftConfig(bins=1)


def _feed(monitor, day, mean, rng, n=200):
    return monitor.observe(day, {"logon": [rng.gauss(mean, 1) for _ in range(n)]})


class TestScoreDriftMonitor:
    def test_silent_until_window_filled(self):
        rng = random.Random(0)
        monitor = ScoreDriftMonitor(DriftConfig(reference_days=5, current_days=2))
        for day in range(6):
            assert _feed(monitor, day, 0.0, rng) == []
        assert monitor.alerts == []

    def test_seeded_injection_raises_exactly_one_valid_alert(self):
        """The acceptance contract: a persistent seeded shift alerts once."""
        rng = random.Random(0)
        monitor = ScoreDriftMonitor(DriftConfig(reference_days=5, current_days=2))
        alerts = []
        for day in range(30):
            mean = 0.0 if day < 15 else 4.0  # the injected drift
            alerts.extend(_feed(monitor, day, mean, rng))
        assert len(alerts) == 1
        alert = alerts[0]
        validate_alert(alert)
        assert alert["kind"] == "score-drift"
        assert alert["day"] == "15"
        assert alert["context"]["aspect"] == "logon"
        assert alert["value"] > alert["threshold"]
        assert monitor.alerts == alerts

    def test_rearms_after_recovery(self):
        rng = random.Random(0)
        monitor = ScoreDriftMonitor(DriftConfig(reference_days=4, current_days=1))
        alerts = []
        for day in range(16):
            mean = 4.0 if 8 <= day < 9 else 0.0  # one-day excursion
            alerts.extend(_feed(monitor, day, mean, rng))
        first_burst = len(alerts)
        assert first_burst >= 1
        # A second excursion after full recovery must alert again.
        for day in range(16, 30):
            mean = 4.0 if day == 24 else 0.0
            alerts.extend(_feed(monitor, day, mean, rng))
        assert len(alerts) > first_burst

    def test_aspects_alert_independently(self):
        rng = random.Random(0)
        monitor = ScoreDriftMonitor(DriftConfig(reference_days=4, current_days=1))
        for day in range(20):
            drifting = 3.0 if day >= 10 else 0.0
            monitor.observe(
                day,
                {
                    "stable": [rng.gauss(0, 1) for _ in range(200)],
                    "moving": [rng.gauss(drifting, 1) for _ in range(200)],
                },
            )
        aspects = {a["context"]["aspect"] for a in monitor.alerts}
        assert aspects == {"moving"}


class TestIngestQualityMonitor:
    def test_quiet_below_min_denominators(self):
        monitor = IngestQualityMonitor()
        assert monitor.observe(events_pushed=10, events_late=10) == []

    def test_late_rate_alert_fires_once_and_validates(self):
        monitor = IngestQualityMonitor(IngestQualityConfig(min_events=100))
        first = monitor.observe(
            "2010-03-01", events_pushed=1000, events_late=100
        )
        again = monitor.observe(
            "2010-03-02", events_pushed=1100, events_late=110
        )
        assert len(first) == 1 and again == []
        validate_alert(first[0])
        assert first[0]["kind"] == "ingest-quality"
        assert first[0]["metric"] == "late-rate"
        assert monitor.alerts == first

    def test_quarantine_rate_uses_day_denominator(self):
        monitor = IngestQualityMonitor(IngestQualityConfig(min_days=5))
        alerts = monitor.observe(days_sealed=10, days_quarantined=3)
        assert [a["metric"] for a in alerts] == ["quarantine-rate"]
        assert alerts[0]["value"] == pytest.approx(0.3)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="late_rate_threshold"):
            IngestQualityConfig(late_rate_threshold=0.0)
        with pytest.raises(ValueError, match="quarantine_rate_threshold"):
            IngestQualityConfig(quarantine_rate_threshold=1.5)


class TestIngestorWiring:
    def test_quality_monitor_sees_lifetime_counters(self):
        """A degraded feed raises an ingest-quality alert through push()."""
        from datetime import date, datetime, timedelta

        from repro.ingest import IngestConfig, Ingestor, SlabBuilder
        from repro.logs.schema import DeviceEvent

        users = ["u0", "u1"]
        day0 = date(2010, 1, 1)

        def connect(day_offset, n=0):
            day = day0 + timedelta(days=day_offset)
            ts = datetime(day.year, day.month, day.day, 9, n % 60)
            return DeviceEvent(ts, users[n % 2], "connect", f"H{n}")

        ingestor = Ingestor(
            SlabBuilder(users),
            config=IngestConfig(allowed_lateness_days=0, start_day=day0),
        )
        monitor = IngestQualityMonitor(
            IngestQualityConfig(min_events=10, min_days=1, late_rate_threshold=0.2)
        )
        ingestor.attach_quality_monitor(monitor)
        # 12 on-time deliveries over two days, then a burst of late ones.
        for n in range(6):
            ingestor.push(connect(0, n=n), f"a{n}")
        for n in range(6):
            ingestor.push(connect(1, n=n), f"b{n}")
        for n in range(8):
            ingestor.push(connect(0, n=n), f"late{n}")  # day 0 sealed already
        ingestor.flush()
        assert [a["metric"] for a in ingestor.alerts] == ["late-rate"]
        validate_alert(ingestor.alerts[0])
