"""Unit tests for the telemetry core: spans, metrics, snapshot/merge."""

import pytest

from repro.obs import (
    MetricsRegistry,
    SpanRecord,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_from_env,
)
from repro.obs.telemetry import _NOOP_INSTRUMENT, _NOOP_SPAN, TELEMETRY_ENV_VAR


class TestSpans:
    def test_span_records_wall_and_cpu_time(self):
        t = Telemetry(enabled=True)
        with t.span("work"):
            sum(range(1000))
        assert len(t.spans) == 1
        record = t.spans[0]
        assert record.name == "work"
        assert record.wall_seconds >= 0.0
        assert record.cpu_seconds >= 0.0

    def test_spans_nest_under_the_open_span(self):
        t = Telemetry(enabled=True)
        with t.span("outer"):
            with t.span("inner.a"):
                pass
            with t.span("inner.b"):
                with t.span("leaf"):
                    pass
        assert [s.name for s in t.spans] == ["outer"]
        outer = t.spans[0]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]
        # The stack unwound completely.
        assert t._stack == []

    def test_span_attributes_and_annotate(self):
        t = Telemetry(enabled=True)
        with t.span("stage", users=6) as span:
            span.annotate(vectors=42)
        assert t.spans[0].attributes == {"users": 6, "vectors": 42}

    def test_annotate_after_exit_still_lands_on_the_record(self):
        # streaming.observe_day annotates latency after the with-block.
        t = Telemetry(enabled=True)
        with t.span("day") as span:
            pass
        span.annotate(latency_seconds=0.5)
        assert t.spans[0].attributes["latency_seconds"] == 0.5

    def test_find_span_and_iter_spans(self):
        t = Telemetry(enabled=True)
        with t.span("a"):
            with t.span("b"):
                pass
        with t.span("c"):
            pass
        assert t.find_span("b").name == "b"
        assert t.find_span("missing") is None
        assert [s.name for s in t.iter_spans()] == ["a", "b", "c"]

    def test_span_survives_exceptions(self):
        t = Telemetry(enabled=True)
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("x")
        assert t.spans[0].name == "boom"
        assert t._stack == []

    def test_span_record_round_trips_through_dict(self):
        record = SpanRecord("outer", 1.5, 1.2, {"k": "v"}, 1024, [SpanRecord("inner")])
        clone = SpanRecord.from_dict(record.to_dict())
        assert clone == record
        assert [s.name for s in clone.walk()] == ["outer", "inner"]


class TestDisabled:
    def test_disabled_span_is_the_shared_noop(self):
        t = Telemetry(enabled=False)
        assert t.span("anything", attr=1) is _NOOP_SPAN
        with t.span("anything") as span:
            span.annotate(ignored=True)
        assert t.spans == []

    def test_disabled_instruments_are_the_shared_noop(self):
        t = Telemetry(enabled=False)
        assert t.counter("c") is _NOOP_INSTRUMENT
        assert t.gauge("g") is _NOOP_INSTRUMENT
        assert t.histogram("h") is _NOOP_INSTRUMENT
        t.counter("c").inc()
        t.gauge("g").set(3.0)
        t.histogram("h").observe(1.0)
        snap = t.snapshot()
        assert snap == {
            "spans": [],
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }

    def test_disabled_merge_is_a_noop(self):
        t = Telemetry(enabled=False)
        t.merge({"spans": [{"name": "x"}], "metrics": {"counters": {"c": 1}}})
        assert t.snapshot()["spans"] == []


class TestMetrics:
    def test_counter_gauge_histogram(self):
        t = Telemetry(enabled=True)
        t.counter("epochs").inc()
        t.counter("epochs").inc(4)
        t.gauge("pool").set(2)
        t.histogram("loss").observe(0.5)
        t.histogram("loss").observe(0.1)
        t.histogram("loss").observe(0.3)
        snap = t.metrics.snapshot()
        assert snap["counters"] == {"epochs": 5}
        assert snap["gauges"] == {"pool": 2.0}
        assert snap["histograms"] == {"loss": [0.5, 0.1, 0.3]}
        summary = t.metrics.histogram("loss").summary()
        assert summary["count"] == 3
        assert summary["min"] == 0.1
        assert summary["median"] == 0.3
        assert summary["max"] == 0.5

    def test_histogram_summary_even_count_and_empty(self):
        h = MetricsRegistry().histogram("h")
        assert h.summary() == {"count": 0}
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.summary()["median"] == 2.5

    def test_registry_merge_semantics(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(1.0)
        registry.gauge("g").set(1.0)
        registry.merge(
            {"counters": {"c": 3, "new": 1}, "gauges": {"g": 9.0, "skip": None},
             "histograms": {"h": [2.0], "h2": [5.0]}}
        )
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 5, "new": 1}
        assert snap["gauges"] == {"g": 9.0}
        assert snap["histograms"] == {"h": [1.0, 2.0], "h2": [5.0]}


class TestSnapshotMerge:
    def test_merged_spans_attach_under_the_open_span(self):
        worker = Telemetry(enabled=True)
        with worker.span("train.aspect", aspect="http"):
            worker.counter("nn.epochs_total").inc(4)
        parent = Telemetry(enabled=True)
        with parent.span("parallel.train_ensemble"):
            parent.merge(worker.snapshot())
        root = parent.spans[0]
        assert [c.name for c in root.children] == ["train.aspect"]
        assert root.children[0].attributes == {"aspect": "http"}
        assert parent.metrics.snapshot()["counters"] == {"nn.epochs_total": 4}

    def test_merge_none_and_reset(self):
        t = Telemetry(enabled=True)
        t.merge(None)
        t.counter("c").inc()
        with t.span("s"):
            pass
        t.reset()
        assert t.snapshot() == {
            "spans": [],
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }
        assert t.enabled


class TestGlobalAndEnv:
    def test_env_parsing(self):
        assert not telemetry_from_env({}).enabled
        for off in ("0", "off", "FALSE", "no", ""):
            assert not telemetry_from_env({TELEMETRY_ENV_VAR: off}).enabled
        on = telemetry_from_env({TELEMETRY_ENV_VAR: "1"})
        assert on.enabled and not on.trace_memory
        mem = telemetry_from_env({TELEMETRY_ENV_VAR: "mem"})
        assert mem.enabled and mem.trace_memory

    def test_set_telemetry_returns_previous(self):
        original = get_telemetry()
        mine = Telemetry(enabled=True)
        try:
            previous = set_telemetry(mine)
            assert previous is original
            assert get_telemetry() is mine
        finally:
            set_telemetry(original)
        assert get_telemetry() is original

    def test_mem_spans_record_traced_peak(self):
        import tracemalloc

        was_tracing = tracemalloc.is_tracing()
        t = Telemetry(enabled=True, trace_memory=True)
        try:
            with t.span("alloc"):
                _ = [0] * 50_000
            assert t.spans[0].mem_peak_bytes > 0
        finally:
            if not was_tracing and tracemalloc.is_tracing():
                tracemalloc.stop()
