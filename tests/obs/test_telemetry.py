"""Unit tests for the telemetry core: spans, metrics, snapshot/merge."""

import pytest

from repro.obs import (
    MetricsRegistry,
    SpanRecord,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_from_env,
)
from repro.obs.telemetry import _NOOP_INSTRUMENT, _NOOP_SPAN, TELEMETRY_ENV_VAR


class TestSpans:
    def test_span_records_wall_and_cpu_time(self):
        t = Telemetry(enabled=True)
        with t.span("work"):
            sum(range(1000))
        assert len(t.spans) == 1
        record = t.spans[0]
        assert record.name == "work"
        assert record.wall_seconds >= 0.0
        assert record.cpu_seconds >= 0.0

    def test_spans_nest_under_the_open_span(self):
        t = Telemetry(enabled=True)
        with t.span("outer"):
            with t.span("inner.a"):
                pass
            with t.span("inner.b"):
                with t.span("leaf"):
                    pass
        assert [s.name for s in t.spans] == ["outer"]
        outer = t.spans[0]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]
        # The stack unwound completely.
        assert t._stack == []

    def test_span_attributes_and_annotate(self):
        t = Telemetry(enabled=True)
        with t.span("stage", users=6) as span:
            span.annotate(vectors=42)
        assert t.spans[0].attributes == {"users": 6, "vectors": 42}

    def test_annotate_after_exit_still_lands_on_the_record(self):
        # streaming.observe_day annotates latency after the with-block.
        t = Telemetry(enabled=True)
        with t.span("day") as span:
            pass
        span.annotate(latency_seconds=0.5)
        assert t.spans[0].attributes["latency_seconds"] == 0.5

    def test_find_span_and_iter_spans(self):
        t = Telemetry(enabled=True)
        with t.span("a"):
            with t.span("b"):
                pass
        with t.span("c"):
            pass
        assert t.find_span("b").name == "b"
        assert t.find_span("missing") is None
        assert [s.name for s in t.iter_spans()] == ["a", "b", "c"]

    def test_span_survives_exceptions(self):
        t = Telemetry(enabled=True)
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("x")
        assert t.spans[0].name == "boom"
        assert t._stack == []

    def test_span_record_round_trips_through_dict(self):
        record = SpanRecord("outer", 1.5, 1.2, {"k": "v"}, 1024, [SpanRecord("inner")])
        clone = SpanRecord.from_dict(record.to_dict())
        assert clone == record
        assert [s.name for s in clone.walk()] == ["outer", "inner"]


class TestDisabled:
    def test_disabled_span_is_the_shared_noop(self):
        t = Telemetry(enabled=False)
        assert t.span("anything", attr=1) is _NOOP_SPAN
        with t.span("anything") as span:
            span.annotate(ignored=True)
        assert t.spans == []

    def test_disabled_instruments_are_the_shared_noop(self):
        t = Telemetry(enabled=False)
        assert t.counter("c") is _NOOP_INSTRUMENT
        assert t.gauge("g") is _NOOP_INSTRUMENT
        assert t.histogram("h") is _NOOP_INSTRUMENT
        t.counter("c").inc()
        t.gauge("g").set(3.0)
        t.histogram("h").observe(1.0)
        snap = t.snapshot()
        assert snap == {
            "spans": [],
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }

    def test_disabled_merge_is_a_noop(self):
        t = Telemetry(enabled=False)
        t.merge({"spans": [{"name": "x"}], "metrics": {"counters": {"c": 1}}})
        assert t.snapshot()["spans"] == []


class TestMetrics:
    def test_counter_gauge_histogram(self):
        t = Telemetry(enabled=True)
        t.counter("epochs").inc()
        t.counter("epochs").inc(4)
        t.gauge("pool").set(2)
        t.histogram("loss").observe(0.5)
        t.histogram("loss").observe(0.1)
        t.histogram("loss").observe(0.3)
        snap = t.metrics.snapshot()
        assert snap["counters"] == {"epochs": 5}
        assert snap["gauges"] == {"pool": 2.0}
        entry = snap["histograms"]["loss"]
        assert entry["values"] == [0.5, 0.1, 0.3]
        assert entry["count"] == 3
        assert entry["sum"] == pytest.approx(0.9)
        assert entry["min"] == 0.1
        assert entry["max"] == 0.5
        summary = t.metrics.histogram("loss").summary()
        assert summary["count"] == 3
        assert summary["min"] == 0.1
        assert summary["median"] == 0.3
        assert summary["max"] == 0.5

    def test_histogram_summary_even_count_and_empty(self):
        h = MetricsRegistry().histogram("h")
        assert h.summary() == {"count": 0}
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.summary()["median"] == 2.5

    def test_registry_merge_semantics(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(1.0)
        registry.gauge("g").set(1.0)
        registry.merge(
            {"counters": {"c": 3, "new": 1}, "gauges": {"g": 9.0, "skip": None},
             "histograms": {"h": [2.0], "h2": [5.0]}}
        )
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 5, "new": 1}
        assert snap["gauges"] == {"g": 9.0}
        # Merge accepts both the dict snapshot format and bare value
        # lists (older snapshots / hand-built payloads).
        assert snap["histograms"]["h"]["values"] == [1.0, 2.0]
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h2"]["values"] == [5.0]


class TestSnapshotMerge:
    def test_merged_spans_attach_under_the_open_span(self):
        worker = Telemetry(enabled=True)
        with worker.span("train.aspect", aspect="http"):
            worker.counter("nn.epochs_total").inc(4)
        parent = Telemetry(enabled=True)
        with parent.span("parallel.train_ensemble"):
            parent.merge(worker.snapshot())
        root = parent.spans[0]
        assert [c.name for c in root.children] == ["train.aspect"]
        assert root.children[0].attributes == {"aspect": "http"}
        assert parent.metrics.snapshot()["counters"] == {"nn.epochs_total": 4}

    def test_merge_none_and_reset(self):
        t = Telemetry(enabled=True)
        t.merge(None)
        t.counter("c").inc()
        with t.span("s"):
            pass
        t.reset()
        assert t.snapshot() == {
            "spans": [],
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }
        assert t.enabled


class TestGlobalAndEnv:
    def test_env_parsing(self):
        assert not telemetry_from_env({}).enabled
        for off in ("0", "off", "FALSE", "no", ""):
            assert not telemetry_from_env({TELEMETRY_ENV_VAR: off}).enabled
        on = telemetry_from_env({TELEMETRY_ENV_VAR: "1"})
        assert on.enabled and not on.trace_memory
        mem = telemetry_from_env({TELEMETRY_ENV_VAR: "mem"})
        assert mem.enabled and mem.trace_memory

    def test_set_telemetry_returns_previous(self):
        original = get_telemetry()
        mine = Telemetry(enabled=True)
        try:
            previous = set_telemetry(mine)
            assert previous is original
            assert get_telemetry() is mine
        finally:
            set_telemetry(original)
        assert get_telemetry() is original

    def test_mem_spans_record_traced_peak(self):
        import tracemalloc

        was_tracing = tracemalloc.is_tracing()
        t = Telemetry(enabled=True, trace_memory=True)
        try:
            with t.span("alloc"):
                _ = [0] * 50_000
            assert t.spans[0].mem_peak_bytes > 0
        finally:
            if not was_tracing and tracemalloc.is_tracing():
                tracemalloc.stop()


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self):
        import numpy as np

        from repro.obs.telemetry import percentile

        values = sorted([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
        for q in (0.0, 25.0, 50.0, 95.0, 99.0, 100.0):
            assert percentile(values, q) == pytest.approx(np.percentile(values, q))

    def test_median_for_odd_and_even_lengths(self):
        from repro.obs.telemetry import percentile

        assert percentile([1.0, 2.0, 3.0], 50.0) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5
        assert percentile([7.0], 99.0) == 7.0

    def test_rejects_empty_and_bad_q(self):
        from repro.obs.telemetry import percentile

        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], 101.0)


class TestHistogramReservoir:
    def test_exact_below_the_cap(self):
        from repro.obs.telemetry import Histogram

        h = Histogram(cap=100)
        for v in range(50):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["values"] == [float(v) for v in range(50)]
        assert snap["count"] == 50

    def test_memory_bounded_and_exact_stats_above_the_cap(self):
        from repro.obs.telemetry import Histogram

        cap, n = 64, 10_000
        h = Histogram(cap=cap, seed=3)
        for v in range(n):
            h.observe(float(v))
        assert len(h.values) == cap  # the regression this guards against
        summary = h.summary()
        assert summary["count"] == n
        assert summary["min"] == 0.0
        assert summary["max"] == float(n - 1)
        assert summary["mean"] == pytest.approx((n - 1) / 2.0)
        # The reservoir is a uniform sample, so p50 lands near the truth.
        assert summary["p50"] == pytest.approx((n - 1) / 2.0, rel=0.25)

    def test_reservoir_is_deterministic_for_a_given_seed(self):
        from repro.obs.telemetry import Histogram

        def run(seed):
            h = Histogram(cap=16, seed=seed)
            for v in range(1000):
                h.observe(float(v))
            return list(h.values)

        assert run(5) == run(5)  # same seed, same sample — resumable runs agree
        assert run(5) != run(6)

    def test_registry_seeds_are_name_derived(self):
        # Two registries (two processes) sampling the same series agree.
        a = MetricsRegistry()
        b = MetricsRegistry()
        for v in range(500):
            a.histogram("day_seconds").observe(float(v))
            b.histogram("day_seconds").observe(float(v))
        assert a.histogram("day_seconds").cap > 0
        assert list(a.histogram("day_seconds").values) == list(
            b.histogram("day_seconds").values
        )

    def test_rejects_bad_cap(self):
        from repro.obs.telemetry import Histogram

        with pytest.raises(ValueError, match="cap"):
            Histogram(cap=0)

    def test_merge_accepts_capped_snapshots(self):
        from repro.obs.telemetry import Histogram

        worker = Histogram(cap=8, seed=1)
        for v in range(100):
            worker.observe(float(v))
        parent = Histogram(cap=8, seed=1)
        parent.observe(-1.0)
        parent.merge(worker.snapshot())
        assert parent.count == 101
        assert parent.min == -1.0
        assert parent.max == 99.0
        assert len(parent.values) == 8
