"""Run-report / bench-report builders, validators and the span renderer."""

import json

import pytest

from repro.nn.network import TrainingHistory
from repro.obs import (
    BENCH_SCHEMA,
    RUN_REPORT_SCHEMA,
    SCHEMA_VERSION,
    Telemetry,
    build_bench_report,
    build_run_report,
    format_span_tree,
    validate_bench_report,
    validate_run_report,
    write_report,
)


def capture():
    t = Telemetry(enabled=True)
    with t.span("detector.fit", model="ACOBE"):
        with t.span("detector.representation") as span:
            span.annotate(users=6)
        t.counter("nn.epochs_total").inc(8)
        t.histogram("train.final_loss").observe(0.25)
        t.gauge("parallel.pool_workers").set(2)
    return t


def history():
    h = TrainingHistory()
    h.loss = [0.9, 0.5]
    h.val_loss = [1.0, 0.6]
    h.grad_norm = [2.0, 1.0]
    return h


class TestRunReport:
    def test_build_and_validate(self):
        doc = build_run_report(
            capture(),
            training_histories={"http": history()},
            name="detect-acobe",
            meta={"scale": "small"},
        )
        validate_run_report(doc)  # must not raise
        assert doc["schema"] == RUN_REPORT_SCHEMA
        assert doc["version"] == SCHEMA_VERSION
        assert doc["meta"]["scale"] == "small"
        assert doc["spans"][0]["name"] == "detector.fit"
        assert doc["spans"][0]["children"][0]["attributes"] == {"users": 6}
        assert doc["metrics"]["counters"] == {"nn.epochs_total": 8}
        hist = doc["metrics"]["histograms"]["train.final_loss"]
        assert hist["values"] == [0.25]
        assert hist["summary"]["count"] == 1
        training = doc["training"]["http"]
        assert training == {
            "epochs": 2,
            "loss": [0.9, 0.5],
            "val_loss": [1.0, 0.6],
            "grad_norm": [2.0, 1.0],
        }

    def test_document_is_json_serializable(self):
        doc = build_run_report(capture(), training_histories={"a": history()})
        validate_run_report(json.loads(json.dumps(doc)))

    @pytest.mark.parametrize(
        "mutate, path",
        [
            (lambda d: d.pop("spans"), "spans"),
            (lambda d: d.update(version="1"), "version"),
            (lambda d: d["spans"][0].pop("wall_seconds"), "wall_seconds"),
            (lambda d: d["metrics"].pop("counters"), "metrics.counters"),
            (lambda d: d["metrics"]["counters"].update(x=1.5), "counters"),
            (lambda d: d["training"]["http"].pop("loss"), "loss"),
            (lambda d: d["training"]["http"].update(epochs="2"), "epochs"),
        ],
    )
    def test_validator_pinpoints_broken_fields(self, mutate, path):
        doc = build_run_report(capture(), training_histories={"http": history()})
        mutate(doc)
        with pytest.raises(ValueError, match=path.split(".")[-1]):
            validate_run_report(doc)


class TestBenchReport:
    def test_build_and_validate(self):
        doc = build_bench_report(
            "parallel_speedup",
            metrics={"speedup": 2.0},
            params={"n_jobs": 4},
            meta={"cpu_cores": 8},
        )
        validate_bench_report(doc)
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["metrics"] == {"speedup": 2.0}
        assert doc["params"] == {"n_jobs": 4}

    def test_empty_metrics_rejected(self):
        doc = build_bench_report("x", metrics={})
        with pytest.raises(ValueError, match="metrics"):
            validate_bench_report(doc)


class TestWriteReport:
    def test_writes_validated_json(self, tmp_path):
        doc = build_bench_report("b", metrics={"seconds": 1.0})
        path = write_report(tmp_path / "sub" / "BENCH_b.json", doc)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == BENCH_SCHEMA
        assert loaded["metrics"]["seconds"] == 1.0

    def test_rejects_unknown_schema(self, tmp_path):
        with pytest.raises(ValueError, match="unknown report schema"):
            write_report(tmp_path / "x.json", {"schema": "nope"})

    def test_rejects_invalid_document(self, tmp_path):
        doc = build_run_report(Telemetry(enabled=True))
        doc.pop("training")
        with pytest.raises(ValueError, match="training"):
            write_report(tmp_path / "x.json", doc)
        assert not (tmp_path / "x.json").exists()


class TestFormatSpanTree:
    def test_renders_nested_tree(self):
        text = format_span_tree(capture())
        lines = text.splitlines()
        assert lines[0].startswith("detector.fit")
        assert "wall=" in lines[0] and "cpu=" in lines[0]
        assert lines[1].startswith("  detector.representation")
        assert "users=6" in lines[1]

    def test_empty_forest(self):
        assert format_span_tree(Telemetry(enabled=True)) == "(no spans recorded)"

    def test_min_wall_filter_keeps_roots(self):
        text = format_span_tree(capture(), min_wall_seconds=10.0)
        assert text.startswith("detector.fit")
        assert "representation" not in text
