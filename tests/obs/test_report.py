"""Run-report / bench-report builders, validators and the span renderer."""

import json

import pytest

from repro.nn.network import TrainingHistory
from repro.obs import (
    BENCH_SCHEMA,
    RUN_REPORT_SCHEMA,
    SCHEMA_VERSION,
    Telemetry,
    build_bench_report,
    build_run_report,
    format_span_tree,
    validate_bench_report,
    validate_run_report,
    write_report,
)


def capture():
    t = Telemetry(enabled=True)
    with t.span("detector.fit", model="ACOBE"):
        with t.span("detector.representation") as span:
            span.annotate(users=6)
        t.counter("nn.epochs_total").inc(8)
        t.histogram("train.final_loss").observe(0.25)
        t.gauge("parallel.pool_workers").set(2)
    return t


def history():
    h = TrainingHistory()
    h.loss = [0.9, 0.5]
    h.val_loss = [1.0, 0.6]
    h.grad_norm = [2.0, 1.0]
    return h


class TestRunReport:
    def test_build_and_validate(self):
        doc = build_run_report(
            capture(),
            training_histories={"http": history()},
            name="detect-acobe",
            meta={"scale": "small"},
        )
        validate_run_report(doc)  # must not raise
        assert doc["schema"] == RUN_REPORT_SCHEMA
        assert doc["version"] == SCHEMA_VERSION
        assert doc["meta"]["scale"] == "small"
        assert doc["spans"][0]["name"] == "detector.fit"
        assert doc["spans"][0]["children"][0]["attributes"] == {"users": 6}
        assert doc["metrics"]["counters"] == {"nn.epochs_total": 8}
        hist = doc["metrics"]["histograms"]["train.final_loss"]
        assert hist["values"] == [0.25]
        assert hist["summary"]["count"] == 1
        training = doc["training"]["http"]
        assert training == {
            "epochs": 2,
            "loss": [0.9, 0.5],
            "val_loss": [1.0, 0.6],
            "grad_norm": [2.0, 1.0],
        }

    def test_document_is_json_serializable(self):
        doc = build_run_report(capture(), training_histories={"a": history()})
        validate_run_report(json.loads(json.dumps(doc)))

    @pytest.mark.parametrize(
        "mutate, path",
        [
            (lambda d: d.pop("spans"), "spans"),
            (lambda d: d.update(version="1"), "version"),
            (lambda d: d["spans"][0].pop("wall_seconds"), "wall_seconds"),
            (lambda d: d["metrics"].pop("counters"), "metrics.counters"),
            (lambda d: d["metrics"]["counters"].update(x=1.5), "counters"),
            (lambda d: d["training"]["http"].pop("loss"), "loss"),
            (lambda d: d["training"]["http"].update(epochs="2"), "epochs"),
        ],
    )
    def test_validator_pinpoints_broken_fields(self, mutate, path):
        doc = build_run_report(capture(), training_histories={"http": history()})
        mutate(doc)
        with pytest.raises(ValueError, match=path.split(".")[-1]):
            validate_run_report(doc)


class TestBenchReport:
    def test_build_and_validate(self):
        doc = build_bench_report(
            "parallel_speedup",
            metrics={"speedup": 2.0},
            params={"n_jobs": 4},
            meta={"cpu_cores": 8},
        )
        validate_bench_report(doc)
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["metrics"] == {"speedup": 2.0}
        assert doc["params"] == {"n_jobs": 4}

    def test_empty_metrics_rejected(self):
        doc = build_bench_report("x", metrics={})
        with pytest.raises(ValueError, match="metrics"):
            validate_bench_report(doc)


class TestWriteReport:
    def test_writes_validated_json(self, tmp_path):
        doc = build_bench_report("b", metrics={"seconds": 1.0})
        path = write_report(tmp_path / "sub" / "BENCH_b.json", doc)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == BENCH_SCHEMA
        assert loaded["metrics"]["seconds"] == 1.0

    def test_rejects_unknown_schema(self, tmp_path):
        with pytest.raises(ValueError, match="unknown report schema"):
            write_report(tmp_path / "x.json", {"schema": "nope"})

    def test_rejects_invalid_document(self, tmp_path):
        doc = build_run_report(Telemetry(enabled=True))
        doc.pop("training")
        with pytest.raises(ValueError, match="training"):
            write_report(tmp_path / "x.json", doc)
        assert not (tmp_path / "x.json").exists()


class TestFormatSpanTree:
    def test_renders_nested_tree(self):
        text = format_span_tree(capture())
        lines = text.splitlines()
        assert lines[0].startswith("detector.fit")
        assert "wall=" in lines[0] and "cpu=" in lines[0]
        assert lines[1].startswith("  detector.representation")
        assert "users=6" in lines[1]

    def test_empty_forest(self):
        assert format_span_tree(Telemetry(enabled=True)) == "(no spans recorded)"

    def test_min_wall_filter_keeps_roots(self):
        text = format_span_tree(capture(), min_wall_seconds=10.0)
        assert text.startswith("detector.fit")
        assert "representation" not in text


class TestEnvelopeRejection:
    """S3: the validators must reject malformed documents with a pointer."""

    def run_doc(self):
        return build_run_report(capture(), training_histories={"http": history()})

    def test_wrong_schema_string(self):
        doc = self.run_doc()
        doc["schema"] = "acobe.run_reprot"
        with pytest.raises(ValueError, match="schema"):
            validate_run_report(doc)
        bench = build_bench_report("b", metrics={"seconds": 1.0})
        bench["schema"] = RUN_REPORT_SCHEMA
        with pytest.raises(ValueError, match="schema"):
            validate_bench_report(bench)

    @pytest.mark.parametrize("key", ["schema", "version", "name", "generated_at", "meta"])
    def test_missing_envelope_keys(self, key):
        doc = self.run_doc()
        doc.pop(key)
        with pytest.raises(ValueError, match=key):
            validate_run_report(doc)

    def test_version_zero_rejected(self):
        doc = self.run_doc()
        doc["version"] = 0
        with pytest.raises(ValueError, match="version"):
            validate_run_report(doc)

    def test_malformed_span_children_pinpointed(self):
        doc = self.run_doc()
        doc["spans"][0]["children"][0]["cpu_seconds"] = "fast"
        with pytest.raises(
            ValueError, match=r"spans\[0\].children\[0\].cpu_seconds"
        ):
            validate_run_report(doc)
        doc = self.run_doc()
        doc["spans"][0]["children"] = ["not-a-span"]
        with pytest.raises(ValueError, match=r"children\[0\]"):
            validate_run_report(doc)

    def test_histogram_entry_shape_enforced(self):
        doc = self.run_doc()
        doc["metrics"]["histograms"]["train.final_loss"] = [0.25]  # pre-reservoir shape
        with pytest.raises(ValueError, match="train.final_loss"):
            validate_run_report(doc)

    def test_bench_params_must_be_a_mapping(self):
        doc = build_bench_report("b", metrics={"seconds": 1.0})
        doc["params"] = [1, 2]
        with pytest.raises(ValueError, match="params"):
            validate_bench_report(doc)


class TestAlerts:
    def test_build_alert_validates_round_trip(self):
        from datetime import date

        from repro.obs import ALERT_SCHEMA, build_alert, validate_alert

        alert = build_alert(
            kind="score-drift",
            message="aspect drifted",
            day=date(2010, 3, 1),
            metric="psi",
            value=0.4,
            threshold=0.25,
            context={"aspect": "logon"},
        )
        validate_alert(alert)
        assert alert["schema"] == ALERT_SCHEMA
        assert alert["day"] == "2010-03-01"

    def test_build_alert_rejects_unknown_severity(self):
        from repro.obs import build_alert

        with pytest.raises(ValueError, match="severity"):
            build_alert(kind="x", message="m", severity="apocalyptic")

    @pytest.mark.parametrize(
        "mutate, path",
        [
            (lambda a: a.update(schema="acobe.alarm"), "schema"),
            (lambda a: a.update(kind=""), "kind"),
            (lambda a: a.update(severity="loud"), "severity"),
            (lambda a: a.update(value="0.4"), "value"),
            (lambda a: a.pop("context"), "context"),
        ],
    )
    def test_validate_alert_rejects(self, mutate, path):
        from repro.obs import build_alert, validate_alert

        alert = build_alert(kind="score-drift", message="m")
        mutate(alert)
        with pytest.raises(ValueError, match=path):
            validate_alert(alert)

    def test_run_report_carries_and_validates_alerts(self):
        from repro.obs import build_alert

        alert = build_alert(kind="ingest-quality", message="late feed")
        doc = build_run_report(
            capture(), training_histories={"http": history()}, alerts=[alert]
        )
        validate_run_report(doc)
        assert doc["alerts"] == [alert]
        # A malformed alert inside the report is pinpointed by index.
        doc["alerts"].append({"schema": "acobe.alert"})
        with pytest.raises(ValueError, match=r"alerts\[1\]"):
            validate_run_report(doc)

    def test_reports_without_alerts_stay_valid(self):
        doc = build_run_report(capture(), training_histories={"http": history()})
        assert "alerts" not in doc or doc["alerts"] == []
        validate_run_report(doc)


class TestHistogramSummaries:
    def test_run_report_summary_has_quantiles(self):
        t = Telemetry(enabled=True)
        for v in range(1, 101):
            t.histogram("streaming.day_seconds").observe(float(v))
        doc = build_run_report(t)
        summary = doc["metrics"]["histograms"]["streaming.day_seconds"]["summary"]
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["p99"] == pytest.approx(99.01)

    def test_span_tree_lists_histogram_quantiles(self):
        t = capture()
        for v in (0.1, 0.2, 0.3):
            t.histogram("streaming.day_seconds").observe(v)
        text = format_span_tree(t)
        assert "histograms:" in text
        line = next(
            l for l in text.splitlines() if l.strip().startswith("streaming.day_seconds")
        )
        assert "p50=0.2" in line and "p95=" in line and "p99=" in line
