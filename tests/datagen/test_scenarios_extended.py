"""Tests for CERT scenarios 3-5 (beyond the paper's evaluation)."""

from datetime import date, timedelta

import pytest

from repro.datagen.calendar import SimulationCalendar
from repro.datagen.org import build_organization
from repro.datagen.scenarios import (
    ScenarioInjection,
    inject_scenario3,
    inject_scenario4,
    inject_scenario5,
)
from repro.datagen.simulator import simulate_cert_dataset

START = date(2010, 4, 12)


@pytest.fixture
def dataset():
    org = build_organization([6], seed=41)
    cal = SimulationCalendar.with_default_holidays(date(2010, 3, 1), date(2010, 5, 30))
    return simulate_cert_dataset(org, cal, seed=41)


class TestScenario3:
    def test_keylogger_plant_and_mass_email(self, dataset):
        users = dataset.organization.user_ids()
        admin, supervisor = users[0], users[1]
        inj = inject_scenario3(dataset, admin, supervisor, start=START, seed=1)
        assert inj.scenario == 3
        assert inj.user == admin

        # The keylogger binary lands on the admin's machine on day 0.
        writes = [
            e
            for e in dataset.store.events(admin, "file", START)
            if e.file_id == "F-KEYLOGGER-EXE"
        ]
        assert writes

        # The final day carries the supervisor's alarming mass email.
        emails = dataset.store.events(supervisor, "email", inj.end)
        mass = [e for e in emails if e.n_recipients >= 20]
        assert len(mass) >= 15

    def test_admin_connects_to_supervisor_pc(self, dataset):
        users = dataset.organization.user_ids()
        admin, supervisor = users[0], users[1]
        inj = inject_scenario3(dataset, admin, supervisor, start=START, seed=1)
        supervisor_pc = dataset.profiles[supervisor].own_pc
        connects = [
            e
            for day in inj.labeled_days
            for e in dataset.store.events(admin, "device", day)
            if e.host == supervisor_pc
        ]
        assert connects

    def test_same_user_rejected(self, dataset):
        u = dataset.organization.user_ids()[0]
        with pytest.raises(ValueError):
            inject_scenario3(dataset, u, u, start=START)


class TestScenario4:
    def test_snooping_footprint(self, dataset):
        users = dataset.organization.user_ids()
        snooper, target = users[2], users[3]
        inj = inject_scenario4(dataset, snooper, target, start=START, seed=2)
        assert inj.scenario == 4
        opens = [
            e
            for day in inj.labeled_days
            for e in dataset.store.events(snooper, "file", day)
            if e.file_id.startswith(f"F-{target}-")
        ]
        assert opens
        big_emails = [
            e
            for day in inj.labeled_days
            for e in dataset.store.events(snooper, "email", day)
            if e.size_bytes >= 100_000
        ]
        assert big_emails

    def test_logons_on_target_pc(self, dataset):
        users = dataset.organization.user_ids()
        snooper, target = users[2], users[3]
        inj = inject_scenario4(dataset, snooper, target, start=START, seed=2)
        target_pc = dataset.profiles[target].own_pc
        logons = [
            e
            for day in inj.labeled_days
            for e in dataset.store.events(snooper, "logon", day)
            if e.pc == target_pc
        ]
        assert logons


class TestScenario5:
    def test_dropbox_uploads(self, dataset):
        user = dataset.organization.user_ids()[4]
        inj = inject_scenario5(dataset, user, start=START, seed=3)
        assert inj.scenario == 5
        uploads = [
            e
            for day in inj.labeled_days
            for e in dataset.store.events(user, "http", day)
            if e.activity == "upload" and e.domain == "dropbox.com"
        ]
        assert len(uploads) >= len(inj.labeled_days)

    def test_distinct_internal_docs(self, dataset):
        user = dataset.organization.user_ids()[4]
        inj = inject_scenario5(dataset, user, start=START, seed=3)
        docs = {
            e.file_id
            for day in inj.labeled_days
            for e in dataset.store.events(user, "file", day)
            if e.file_id.startswith("F-INTERNAL-")
        }
        assert len(docs) >= len(inj.labeled_days)

    def test_working_days_only(self, dataset):
        user = dataset.organization.user_ids()[4]
        inj = inject_scenario5(dataset, user, start=START, seed=3)
        assert all(dataset.calendar.is_working_day(d) for d in inj.labeled_days)


class TestValidation:
    def test_scenario_range(self):
        with pytest.raises(ValueError):
            ScenarioInjection(
                user="u", scenario=6, start=START, end=START, labeled_days=(START,)
            )
