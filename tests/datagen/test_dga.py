"""newGOZ-style DGA tests."""

import re
from datetime import date

import pytest

from repro.datagen.dga import newgoz_domain, newgoz_domains


def test_deterministic():
    d = date(2021, 2, 2)
    assert newgoz_domain(d, 0) == newgoz_domain(d, 0)


def test_format():
    for i in range(50):
        domain = newgoz_domain(date(2021, 2, 2), i)
        assert re.fullmatch(r"[a-z]{12,22}\.(com|net|org|biz|info)", domain)


def test_distinct_across_indices():
    domains = newgoz_domains(date(2021, 2, 2), 100)
    assert len(set(domains)) == 100


def test_distinct_across_days():
    a = set(newgoz_domains(date(2021, 2, 2), 50))
    b = set(newgoz_domains(date(2021, 2, 3), 50))
    assert not a & b


def test_seed_changes_output():
    d = date(2021, 2, 2)
    assert newgoz_domain(d, 0, seed=1) != newgoz_domain(d, 0, seed=2)


def test_rejects_negative_index():
    with pytest.raises(ValueError):
        newgoz_domain(date(2021, 1, 1), -1)


def test_rejects_negative_count():
    with pytest.raises(ValueError):
        newgoz_domains(date(2021, 1, 1), -5)


def test_count_zero_empty():
    assert newgoz_domains(date(2021, 1, 1), 0) == []
