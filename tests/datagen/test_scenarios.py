"""Insider-threat scenario injection tests."""

from datetime import date, timedelta

import pytest

from repro.datagen.calendar import SimulationCalendar
from repro.datagen.org import build_organization
from repro.datagen.scenarios import (
    inject_scenario1,
    inject_scenario2,
    pick_scenario1_victim,
    pick_scenario2_victim,
)
from repro.datagen.simulator import simulate_cert_dataset
from repro.utils.timeutil import WORKING_HOURS


@pytest.fixture
def dataset():
    org = build_organization([8], seed=21)
    cal = SimulationCalendar.with_default_holidays(date(2010, 3, 1), date(2010, 5, 30))
    return simulate_cert_dataset(org, cal, seed=21)


class TestScenario1:
    def test_injection_adds_labels(self, dataset):
        victim = pick_scenario1_victim(dataset, dataset.organization.departments()[0])
        inj = inject_scenario1(dataset, victim, start=date(2010, 4, 20), seed=1)
        assert inj.user == victim
        assert dataset.abnormal_users == [victim]
        assert len(inj.labeled_days) >= 5
        assert all(inj.start <= d <= inj.end for d in inj.labeled_days)

    def test_victim_gains_off_hour_device_usage(self, dataset):
        victim = pick_scenario1_victim(dataset, dataset.organization.departments()[0])
        inj = inject_scenario1(dataset, victim, start=date(2010, 4, 20), seed=1)
        connects = [
            e
            for day in inj.labeled_days
            for e in dataset.store.events(victim, "device", day)
            if e.activity == "connect"
        ]
        assert connects, "scenario 1 must add device connections"
        assert all(not WORKING_HOURS.contains(e.timestamp) for e in connects)

    def test_victim_uploads_to_wikileaks(self, dataset):
        victim = pick_scenario1_victim(dataset, dataset.organization.departments()[0])
        inj = inject_scenario1(dataset, victim, start=date(2010, 4, 20), seed=1)
        uploads = [
            e
            for day in inj.labeled_days
            for e in dataset.store.events(victim, "http", day)
            if e.activity == "upload" and e.domain == "wikileaks.org"
        ]
        assert uploads

    def test_rejects_device_user_victim(self, dataset):
        device_users = [u for u, p in dataset.profiles.items() if p.device_user]
        if not device_users:
            pytest.skip("no device user in this draw")
        with pytest.raises(ValueError, match="scenario 1 requires"):
            inject_scenario1(dataset, device_users[0], start=date(2010, 4, 20))

    def test_rejects_unknown_user(self, dataset):
        with pytest.raises(KeyError):
            inject_scenario1(dataset, "ZZZ0000", start=date(2010, 4, 20))


class TestScenario2:
    def test_two_phases(self, dataset):
        dept = dataset.organization.departments()[0]
        victim = pick_scenario2_victim(dataset, dept)
        inj = inject_scenario2(
            dataset, victim, start=date(2010, 4, 1), surf_days=20, exfil_days=8, seed=2
        )
        assert inj.scenario == 2
        assert inj.end == date(2010, 4, 1) + timedelta(days=27)

        surf_window = [d for d in inj.labeled_days if d < date(2010, 4, 21)]
        exfil_window = [d for d in inj.labeled_days if d >= date(2010, 4, 21)]
        assert surf_window and exfil_window

    def test_surf_phase_uploads_docs_to_job_sites(self, dataset):
        dept = dataset.organization.departments()[0]
        victim = pick_scenario2_victim(dataset, dept)
        inj = inject_scenario2(
            dataset, victim, start=date(2010, 4, 1), surf_days=20, exfil_days=8, seed=2
        )
        uploads = [
            e
            for day in inj.labeled_days
            for e in dataset.store.events(victim, "http", day)
            if e.activity == "upload" and e.filetype == "doc"
        ]
        assert uploads
        domains = {e.domain for e in uploads}
        assert len(domains) >= 3, "resume goes to several websites"

    def test_exfil_phase_device_burst(self, dataset):
        dept = dataset.organization.departments()[0]
        victim = pick_scenario2_victim(dataset, dept)
        inj = inject_scenario2(
            dataset, victim, start=date(2010, 4, 1), surf_days=20, exfil_days=8, seed=2
        )
        exfil_days = [d for d in inj.labeled_days if d >= date(2010, 4, 21)]
        connects = [
            e
            for day in exfil_days
            for e in dataset.store.events(victim, "device", day)
            if e.activity == "connect"
        ]
        assert len(connects) / max(len(exfil_days), 1) >= 4

    def test_victim_selection_prefers_non_uploaders(self, dataset):
        dept = dataset.organization.departments()[0]
        victim = pick_scenario2_victim(dataset, dept)
        profile = dataset.profiles[victim]
        others = [r.user for r in dataset.organization.members(dept)]
        doc_rates = [dataset.profiles[u].upload_rates.get("doc", 0.0) for u in others]
        assert profile.upload_rates.get("doc", 0.0) == min(doc_rates)

    def test_exclude_respected(self, dataset):
        dept = dataset.organization.departments()[0]
        first = pick_scenario2_victim(dataset, dept)
        second = pick_scenario2_victim(dataset, dept, exclude=(first,))
        assert first != second


class TestInjectionRecord:
    def test_multiple_injections_accumulate(self, dataset):
        dept = dataset.organization.departments()[0]
        v1 = pick_scenario1_victim(dataset, dept)
        inject_scenario1(dataset, v1, start=date(2010, 4, 20), seed=1)
        v2 = pick_scenario2_victim(dataset, dept, exclude=(v1,))
        inject_scenario2(dataset, v2, start=date(2010, 4, 1), surf_days=15, exfil_days=5, seed=2)
        assert sorted(dataset.abnormal_users) == sorted({v1, v2})
        labels = dataset.labels()
        assert labels[v1] and labels[v2]
        assert sum(labels.values()) == 2
