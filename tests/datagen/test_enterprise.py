"""Enterprise simulator tests."""

from datetime import date

import numpy as np
import pytest

from repro.datagen.calendar import SimulationCalendar
from repro.datagen.enterprise import (
    COMMAND_EVENT_IDS,
    CONFIG_EVENT_IDS,
    FILE_EVENT_IDS,
    RESOURCE_EVENT_IDS,
    EnterpriseProfile,
    RolloutChange,
    sample_enterprise_profiles,
    simulate_enterprise_dataset,
)


@pytest.fixture(scope="module")
def calendar():
    return SimulationCalendar.with_default_holidays(date(2021, 7, 1), date(2021, 9, 15))


@pytest.fixture(scope="module")
def dataset(calendar):
    return simulate_enterprise_dataset(8, calendar, seed=3)


class TestEventIdGroups:
    def test_groups_disjoint(self):
        groups = [FILE_EVENT_IDS, COMMAND_EVENT_IDS, CONFIG_EVENT_IDS, RESOURCE_EVENT_IDS]
        for i, a in enumerate(groups):
            for b in groups[i + 1 :]:
                assert not a & b

    def test_paper_listed_ids_present(self):
        # Section VI-B lists these explicitly.
        assert {2, 11, 4656, 4663, 4670, 5140, 5145} <= FILE_EVENT_IDS
        assert {1, 4100, 4104, 4688} <= COMMAND_EVENT_IDS


class TestSimulation:
    def test_population(self, dataset):
        assert len(dataset.users()) == 8
        assert dataset.users()[0].startswith("emp")

    def test_log_families_present(self, dataset):
        types = set(dataset.store.type_names())
        assert {"windows", "sysmon", "proxy", "logon"} <= types

    def test_rollout_scheduled_by_default(self, dataset):
        assert len(dataset.rollouts) == 1

    def test_reproducible(self, calendar):
        a = simulate_enterprise_dataset(4, calendar, seed=9)
        b = simulate_enterprise_dataset(4, calendar, seed=9)
        assert a.store.count() == b.store.count()

    def test_rejects_empty_population(self, calendar):
        with pytest.raises(ValueError):
            simulate_enterprise_dataset(0, calendar)

    def test_no_attacks_by_default(self, dataset):
        assert dataset.victims == []


class TestRolloutEffect:
    def test_command_rises_http_drops(self, calendar):
        rollout = RolloutChange(
            start=date(2021, 8, 16), duration_days=5, participation=1.0,
            command_multiplier=4.0, http_multiplier=0.3,
        )
        ds = simulate_enterprise_dataset(6, calendar, seed=4, rollouts=[rollout])
        rollout_days = [d for d in calendar.days() if rollout.active_on(d)]
        normal_days = [
            d for d in calendar.working_days() if not rollout.active_on(d)
        ]

        def mean_daily(user, type_name, days, pred=lambda e: True):
            return np.mean(
                [sum(pred(e) for e in ds.store.events(user, type_name, d)) for d in days]
            )

        cmd_ids = COMMAND_EVENT_IDS
        rollout_cmd = np.mean(
            [
                mean_daily(u, "sysmon", rollout_days, lambda e: e.event_id in cmd_ids)
                + mean_daily(u, "windows", rollout_days, lambda e: e.event_id in cmd_ids)
                for u in ds.users()
            ]
        )
        normal_cmd = np.mean(
            [
                mean_daily(u, "sysmon", normal_days, lambda e: e.event_id in cmd_ids)
                + mean_daily(u, "windows", normal_days, lambda e: e.event_id in cmd_ids)
                for u in ds.users()
            ]
        )
        rollout_http = np.mean([mean_daily(u, "proxy", rollout_days) for u in ds.users()])
        normal_http = np.mean([mean_daily(u, "proxy", normal_days) for u in ds.users()])
        assert rollout_cmd > 1.5 * normal_cmd
        assert rollout_http < 0.8 * normal_http


class TestProfiles:
    def test_sampling_reproducible(self):
        a = sample_enterprise_profiles(["x", "y"], seed=1)
        b = sample_enterprise_profiles(["x", "y"], seed=1)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            EnterpriseProfile(user="u", file_rate=-1)
        with pytest.raises(ValueError):
            EnterpriseProfile(user="u", off_hour_fraction=2.0)

    def test_vocabularies(self):
        p = EnterpriseProfile(user="u")
        assert len(p.habitual_files) == p.n_habitual_files
        assert any("portal" in d for d in p.habitual_domains)
