"""Organization model tests."""

import re

import pytest

from repro.datagen.org import Organization, build_organization
from repro.logs.schema import UserRecord


class TestBuildOrganization:
    def test_sizes(self):
        org = build_organization([5, 7, 3], seed=0)
        assert len(org) == 15
        sizes = [len(org.members(d)) for d in org.departments()]
        assert sorted(sizes) == [3, 5, 7]

    def test_cert_style_ids(self):
        org = build_organization([10], seed=0)
        for uid in org.user_ids():
            assert re.fullmatch(r"[A-Z]{3}\d{4}", uid)

    def test_ids_unique(self):
        org = build_organization([200, 200], seed=1)
        ids = org.user_ids()
        assert len(ids) == len(set(ids))

    def test_three_tier_org_path(self):
        org = build_organization([4], seed=0)
        record = org.users[0]
        assert len(record.org_path) == 3
        assert record.department.count("/") == 2

    def test_reproducible(self):
        a = build_organization([5, 5], seed=42)
        b = build_organization([5, 5], seed=42)
        assert a.user_ids() == b.user_ids()

    def test_different_seeds_differ(self):
        a = build_organization([20], seed=1)
        b = build_organization([20], seed=2)
        assert a.user_ids() != b.user_ids()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_organization([])

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            build_organization([5, 0])

    def test_paper_population(self):
        org = build_organization([114, 272, 270, 273], seed=0)
        assert len(org) == 929
        assert len(org.departments()) == 4


class TestQueries:
    @pytest.fixture(scope="class")
    def org(self):
        return build_organization([4, 4], seed=9)

    def test_department_of(self, org):
        uid = org.user_ids()[0]
        assert org.department_of(uid) in org.departments()

    def test_record_lookup(self, org):
        uid = org.user_ids()[0]
        assert org.record(uid).user == uid

    def test_record_missing_raises(self, org):
        with pytest.raises(KeyError):
            org.record("ZZZ9999")

    def test_members_missing_raises(self, org):
        with pytest.raises(KeyError):
            org.members("no-such-dept")

    def test_group_map_covers_everyone(self, org):
        gm = org.group_map()
        assert set(gm) == set(org.user_ids())
        assert set(gm.values()) == set(org.departments())

    def test_duplicate_ids_rejected(self):
        rec = UserRecord("AAA0001", "X Y", ("C", "D", "E"))
        with pytest.raises(ValueError):
            Organization("X", [rec, rec])
