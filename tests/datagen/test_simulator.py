"""CERT-style simulator behaviour tests (uses the shared tiny dataset)."""

from datetime import date, timedelta

import numpy as np
import pytest

from repro.datagen.calendar import SimulationCalendar
from repro.datagen.org import build_organization
from repro.datagen.simulator import (
    EnvironmentalChange,
    simulate_cert_dataset,
)
from repro.utils.timeutil import WORKING_HOURS


class TestDatasetShape:
    def test_every_user_has_events(self, tiny_dataset, tiny_org):
        assert tiny_dataset.store.users() == tiny_org.user_ids()

    def test_all_log_types_present(self, tiny_dataset):
        types = set(tiny_dataset.store.type_names())
        assert {"logon", "file", "http", "email"} <= types

    def test_events_within_calendar(self, tiny_dataset, tiny_calendar):
        days = tiny_dataset.store.days()
        assert days[0] >= tiny_calendar.start
        assert days[-1] <= tiny_calendar.end

    def test_no_injections_by_default(self, tiny_dataset):
        assert tiny_dataset.abnormal_users == []
        assert all(not v for v in tiny_dataset.labels().values())


class TestReproducibility:
    def test_same_seed_same_dataset(self, tiny_org, tiny_calendar):
        a = simulate_cert_dataset(tiny_org, tiny_calendar, seed=5)
        b = simulate_cert_dataset(tiny_org, tiny_calendar, seed=5)
        assert a.store.count() == b.store.count()
        user = tiny_org.user_ids()[0]
        ev_a = a.store.events(user, "http")
        ev_b = b.store.events(user, "http")
        assert [e.timestamp for e in ev_a] == [e.timestamp for e in ev_b]

    def test_different_seed_differs(self, tiny_org, tiny_calendar):
        a = simulate_cert_dataset(tiny_org, tiny_calendar, seed=5)
        b = simulate_cert_dataset(tiny_org, tiny_calendar, seed=6)
        assert a.store.count() != b.store.count()


class TestBehaviouralStructure:
    def test_working_days_busier_than_weekends(self, tiny_dataset, tiny_calendar):
        working = [d for d in tiny_calendar.days() if tiny_calendar.is_working_day(d)]
        weekend = [d for d in tiny_calendar.days() if tiny_calendar.is_weekend(d)]
        user = tiny_dataset.store.users()[0]

        def daily(day_list):
            return np.mean(
                [len(tiny_dataset.store.events(user, "http", d)) for d in day_list]
            )

        assert daily(working) > 3 * daily(weekend)

    def test_most_activity_in_working_hours(self, tiny_dataset):
        user = tiny_dataset.store.users()[0]
        events = tiny_dataset.store.events(user, "http")
        in_hours = sum(WORKING_HOURS.contains(e.timestamp) for e in events)
        assert in_hours / len(events) > 0.6

    def test_non_device_users_have_no_device_events(self, tiny_dataset):
        for user, profile in tiny_dataset.profiles.items():
            if not profile.device_user:
                assert len(tiny_dataset.store.events(user, "device")) == 0


class TestEnvironmentalChange:
    def test_new_service_reaches_most_users(self, tiny_org, tiny_calendar):
        change = EnvironmentalChange(
            start=date(2010, 3, 15),
            duration_days=3,
            kind="new_service",
            domain="rollout.dtaa.com",
            participation=1.0,
        )
        dataset = simulate_cert_dataset(
            tiny_org, tiny_calendar, seed=5, environmental_changes=[change]
        )
        hit_users = 0
        for user in dataset.store.users():
            visits = [
                e
                for d in range(3)
                for e in dataset.store.events(user, "http", date(2010, 3, 15) + timedelta(days=d))
                if e.domain == "rollout.dtaa.com"
            ]
            if visits:
                hit_users += 1
        assert hit_users == len(tiny_org)

    def test_active_on_window(self):
        change = EnvironmentalChange(date(2010, 3, 15), 3, "outage", "x.com")
        assert change.active_on(date(2010, 3, 15))
        assert change.active_on(date(2010, 3, 17))
        assert not change.active_on(date(2010, 3, 18))

    def test_validation(self):
        with pytest.raises(ValueError):
            EnvironmentalChange(date(2010, 1, 1), 0, "outage", "x.com")
        with pytest.raises(ValueError):
            EnvironmentalChange(date(2010, 1, 1), 2, "meteor", "x.com")
        with pytest.raises(ValueError):
            EnvironmentalChange(date(2010, 1, 1), 2, "outage", "x.com", participation=0.0)


def test_missing_profile_raises(tiny_org, tiny_calendar):
    with pytest.raises(ValueError, match="profiles missing"):
        simulate_cert_dataset(tiny_org, tiny_calendar, seed=5, profiles={})
