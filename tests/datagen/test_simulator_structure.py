"""Deeper structural assertions on the CERT simulator's output."""

from datetime import date

import numpy as np
import pytest

from repro.datagen.calendar import SimulationCalendar
from repro.datagen.org import build_organization
from repro.datagen.simulator import simulate_cert_dataset
from repro.features.cert import extract_cert_measurements


@pytest.fixture(scope="module")
def sim():
    org = build_organization([10], seed=31)
    cal = SimulationCalendar.with_default_holidays(date(2010, 2, 1), date(2010, 5, 30))
    return simulate_cert_dataset(org, cal, seed=31), org, cal


class TestBusyDayBurst:
    def test_busy_days_carry_more_visits(self, sim):
        dataset, org, cal = sim
        busy = [d for d in cal.days() if cal.is_busy_day(d)]
        ordinary = [
            d for d in cal.days() if cal.is_working_day(d) and not cal.is_busy_day(d)
        ]

        def mean_visits(days):
            counts = []
            for user in org.user_ids():
                for day in days:
                    counts.append(
                        sum(
                            1
                            for e in dataset.store.events(user, "http", day)
                            if e.activity == "visit"
                        )
                    )
            return np.mean(counts)

        assert mean_visits(busy) > 1.25 * mean_visits(ordinary)

    def test_busy_burst_is_group_correlated(self, sim):
        """Most users rise together on a busy day -- the paper's FP trap."""
        dataset, org, cal = sim
        busy = [d for d in cal.days() if cal.is_busy_day(d)][:10]
        ordinary = [
            d for d in cal.days() if cal.is_working_day(d) and not cal.is_busy_day(d)
        ][:10]
        risers = 0
        for user in org.user_ids():
            busy_mean = np.mean(
                [len(dataset.store.events(user, "http", d)) for d in busy]
            )
            ordinary_mean = np.mean(
                [len(dataset.store.events(user, "http", d)) for d in ordinary]
            )
            if busy_mean > ordinary_mean:
                risers += 1
        assert risers >= 0.8 * len(org)


class TestNoveltyDynamics:
    def test_new_op_declines_after_warmup(self, sim):
        """Habitual vocabularies get exhausted: novelty is front-loaded."""
        dataset, org, cal = sim
        cube = extract_cert_measurements(
            dataset.store, org.user_ids(), cal.days()
        )
        f = cube.feature_set.index_of("http-new-op")
        first_fortnight = cube.values[:, f, :, :14].sum()
        last_fortnight = cube.values[:, f, :, -14:].sum()
        assert first_fortnight > 1.5 * last_fortnight

    def test_steady_state_novelty_nonzero(self, sim):
        """Users keep discovering new domains at their habitual rate."""
        dataset, org, cal = sim
        cube = extract_cert_measurements(dataset.store, org.user_ids(), cal.days())
        f = cube.feature_set.index_of("http-new-op")
        assert cube.values[:, f, :, -14:].sum() > 0


class TestOffHourAsymmetry:
    def test_machine_noise_not_scaled_by_calendar(self, sim):
        """update.dtaa.com traffic continues on weekends (machine-initiated)."""
        dataset, org, cal = sim
        weekends = [d for d in cal.days() if cal.is_weekend(d)]
        hits = 0
        for user in org.user_ids():
            for day in weekends:
                hits += sum(
                    1
                    for e in dataset.store.events(user, "http", day)
                    if e.domain == "update.dtaa.com"
                )
        assert hits > 0

    def test_emails_generated(self, sim):
        dataset, org, _ = sim
        assert any(dataset.store.events(u, "email") for u in org.user_ids())
