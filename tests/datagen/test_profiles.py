"""User profile sampling tests."""

import numpy as np
import pytest

from repro.datagen.profiles import UserProfile, sample_profile, sample_profiles


class TestUserProfile:
    def test_defaults_valid(self):
        p = UserProfile(user="u")
        assert p.logon_rate > 0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            UserProfile(user="u", file_open_rate=-1)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            UserProfile(user="u", remote_fraction=1.5)

    def test_rejects_unknown_upload_type(self):
        with pytest.raises(ValueError):
            UserProfile(user="u", upload_rates={"iso": 1.0})

    def test_rejects_empty_vocab(self):
        with pytest.raises(ValueError):
            UserProfile(user="u", n_habitual_files=0)

    def test_vocabularies_are_user_specific(self):
        a = UserProfile(user="AAA")
        b = UserProfile(user="BBB")
        assert not set(a.habitual_files) & set(b.habitual_files)
        # Shared intranet domains overlap, personal ones don't.
        shared = set(a.habitual_domains) & set(b.habitual_domains)
        assert all("intranet" in d or "dtaa" in d for d in shared)

    def test_own_pc_in_habitual_hosts(self):
        p = UserProfile(user="u", n_habitual_hosts=2)
        assert p.own_pc in p.habitual_hosts


class TestSampling:
    def test_reproducible(self):
        a = sample_profile("u", np.random.default_rng(7))
        b = sample_profile("u", np.random.default_rng(7))
        assert a == b

    def test_device_users_have_positive_rate(self):
        rng = np.random.default_rng(0)
        profiles = [sample_profile(f"u{i}", rng) for i in range(200)]
        for p in profiles:
            if p.device_user:
                assert p.device_rate > 0
            else:
                assert p.device_rate == 0.0

    def test_device_user_fraction_reasonable(self):
        rng = np.random.default_rng(0)
        profiles = [sample_profile(f"u{i}", rng, device_user_prob=0.25) for i in range(400)]
        frac = sum(p.device_user for p in profiles) / len(profiles)
        assert 0.15 < frac < 0.35

    def test_off_hour_workers_have_bigger_fraction(self):
        rng = np.random.default_rng(0)
        profiles = [sample_profile(f"u{i}", rng) for i in range(300)]
        on = [p.off_hour_fraction for p in profiles if p.off_hour_worker]
        off = [p.off_hour_fraction for p in profiles if not p.off_hour_worker]
        assert min(on) > max(off)

    def test_upload_habits_regular_or_absent(self):
        """Habitual upload rates must be 0 or comfortably above the noise
        floor -- sporadic habits would saturate deviation clamps."""
        rng = np.random.default_rng(0)
        for i in range(300):
            p = sample_profile(f"u{i}", rng)
            for rate in p.upload_rates.values():
                assert rate > 0.5

    def test_sample_profiles_covers_users(self):
        users = ["a", "b", "c"]
        profiles = sample_profiles(users, seed=1)
        assert set(profiles) == set(users)
        assert all(profiles[u].user == u for u in users)

    def test_sample_profiles_seeded(self):
        assert sample_profiles(["a", "b"], seed=3) == sample_profiles(["a", "b"], seed=3)
