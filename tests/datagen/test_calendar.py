"""Simulation calendar tests."""

from datetime import date

import pytest

from repro.datagen.calendar import SimulationCalendar, default_holidays


@pytest.fixture
def cal():
    # 2010-01-04 is a Monday.
    return SimulationCalendar.with_default_holidays(date(2010, 1, 1), date(2010, 12, 31))


class TestBasics:
    def test_days_inclusive(self, cal):
        days = cal.days()
        assert days[0] == date(2010, 1, 1)
        assert days[-1] == date(2010, 12, 31)
        assert cal.n_days() == 365

    def test_rejects_reversed_range(self):
        with pytest.raises(ValueError):
            SimulationCalendar(date(2010, 2, 1), date(2010, 1, 1))

    def test_weekend_detection(self, cal):
        assert cal.is_weekend(date(2010, 1, 2))  # Saturday
        assert cal.is_weekend(date(2010, 1, 3))  # Sunday
        assert not cal.is_weekend(date(2010, 1, 4))  # Monday

    def test_holiday_detection(self, cal):
        assert cal.is_holiday(date(2010, 1, 1))
        assert cal.is_holiday(date(2010, 12, 25))
        assert cal.is_holiday(date(2010, 7, 4))

    def test_default_holidays_cover_thanksgiving_pair(self):
        hols = default_holidays([2010])
        # 4th Thursday of November 2010 is the 25th.
        assert date(2010, 11, 25) in hols
        assert date(2010, 11, 26) in hols


class TestBusyDays:
    def test_monday_is_busy(self, cal):
        assert cal.is_busy_day(date(2010, 1, 4))

    def test_midweek_not_busy(self, cal):
        assert not cal.is_busy_day(date(2010, 1, 6))

    def test_day_after_holiday_is_busy(self, cal):
        # July 4 2010 is a Sunday; Monday July 5 follows a non-working day.
        assert cal.is_busy_day(date(2010, 7, 5))

    def test_weekend_never_busy(self, cal):
        assert not cal.is_busy_day(date(2010, 1, 2))


class TestActivityFactor:
    def test_ordinary_working_day(self, cal):
        assert cal.activity_factor(date(2010, 1, 6)) == 1.0

    def test_busy_day_factor(self, cal):
        assert cal.activity_factor(date(2010, 1, 4)) == cal.busy_day_factor

    def test_weekend_factor(self, cal):
        assert cal.activity_factor(date(2010, 1, 2)) == cal.weekend_activity_factor

    def test_holiday_factor(self, cal):
        assert cal.activity_factor(date(2010, 12, 25)) == cal.holiday_activity_factor

    def test_holiday_beats_weekend(self, cal):
        # Christmas 2010 is a Saturday; the holiday factor must win.
        assert cal.activity_factor(date(2010, 12, 25)) == cal.holiday_activity_factor


class TestSplit:
    def test_split_partitions_days(self, cal):
        head, tail = cal.split(date(2010, 6, 30))
        assert head.end == date(2010, 6, 30)
        assert tail.start == date(2010, 7, 1)
        assert head.n_days() + tail.n_days() == cal.n_days()

    def test_split_preserves_holidays(self, cal):
        _, tail = cal.split(date(2010, 6, 30))
        assert tail.is_holiday(date(2010, 12, 25))

    def test_split_out_of_range_raises(self, cal):
        with pytest.raises(ValueError):
            cal.split(date(2010, 12, 31))

    def test_working_days_excludes_weekends_and_holidays(self, cal):
        working = cal.working_days()
        assert date(2010, 1, 2) not in working
        assert date(2010, 12, 25) not in working
        assert date(2010, 1, 4) in working

    def test_validation_of_factors(self):
        with pytest.raises(ValueError):
            SimulationCalendar(date(2010, 1, 1), date(2010, 1, 2), busy_day_factor=0.5)
        with pytest.raises(ValueError):
            SimulationCalendar(date(2010, 1, 1), date(2010, 1, 2), weekend_activity_factor=1.5)
