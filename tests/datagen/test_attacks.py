"""Zeus / WannaCry attack-injection tests."""

from datetime import date, timedelta

import pytest

from repro.datagen.attacks import inject_wannacry, inject_zeus
from repro.datagen.calendar import SimulationCalendar
from repro.datagen.enterprise import simulate_enterprise_dataset


@pytest.fixture
def dataset():
    cal = SimulationCalendar.with_default_holidays(date(2021, 7, 1), date(2021, 8, 31))
    return simulate_enterprise_dataset(4, cal, seed=8)


ATTACK_DAY = date(2021, 8, 2)


class TestZeus:
    def test_injection_recorded(self, dataset):
        inj = inject_zeus(dataset, "emp0000", ATTACK_DAY)
        assert dataset.victims == ["emp0000"]
        assert inj.attack == "zeus"

    def test_day_zero_registry_modifications(self, dataset):
        inject_zeus(dataset, "emp0000", ATTACK_DAY)
        regs = [
            e
            for e in dataset.store.events("emp0000", "sysmon", ATTACK_DAY)
            if e.event_id == 13 and "zeus" in e.image
        ]
        assert len(regs) >= 3

    def test_cc_traffic_starts_after_delay(self, dataset):
        inj = inject_zeus(dataset, "emp0000", ATTACK_DAY, active_delay_days=2)
        # No C&C on the attack day or the next.
        for offset in (0, 1):
            day = ATTACK_DAY + timedelta(days=offset)
            cc = [
                e
                for e in dataset.store.events("emp0000", "proxy", day)
                if "gameover" in e.domain
            ]
            assert cc == []
        first_active = ATTACK_DAY + timedelta(days=2)
        cc = [
            e
            for e in dataset.store.events("emp0000", "proxy", first_active)
            if "gameover" in e.domain
        ]
        assert cc

    def test_dga_nxdomain_flood(self, dataset):
        inject_zeus(dataset, "emp0000", ATTACK_DAY, dga_queries_per_day=25)
        day = ATTACK_DAY + timedelta(days=3)
        nx = [e for e in dataset.store.events("emp0000", "dns", day) if not e.resolved]
        assert len(nx) >= 25
        failures = [
            e for e in dataset.store.events("emp0000", "proxy", day) if e.verdict == "failure"
        ]
        assert len(failures) >= 25

    def test_dga_domains_rotate_daily(self, dataset):
        inject_zeus(dataset, "emp0000", ATTACK_DAY, dga_queries_per_day=10)
        d1 = {e.domain for e in dataset.store.events("emp0000", "dns", ATTACK_DAY + timedelta(days=2))}
        d2 = {e.domain for e in dataset.store.events("emp0000", "dns", ATTACK_DAY + timedelta(days=3))}
        assert d1 and d2 and not (d1 & d2)

    def test_unknown_victim_raises(self, dataset):
        with pytest.raises(KeyError):
            inject_zeus(dataset, "ghost", ATTACK_DAY)


class TestWannaCry:
    def test_registry_and_execution_day_zero(self, dataset):
        inject_wannacry(dataset, "emp0001", ATTACK_DAY)
        sysmon = dataset.store.events("emp0001", "sysmon", ATTACK_DAY)
        assert any(e.event_id == 1 and "tasksche" in e.image for e in sysmon)
        assert sum(e.event_id == 13 for e in sysmon) >= 3

    def test_mass_encryption_footprint(self, dataset):
        inject_wannacry(dataset, "emp0001", ATTACK_DAY, encryption_days=2, files_per_day=100)
        for offset in range(2):
            day = ATTACK_DAY + timedelta(days=offset)
            writes = [
                e
                for e in dataset.store.events("emp0001", "sysmon", day)
                if e.event_id == 11 and e.target.endswith(".WNCRY")
            ]
            assert len(writes) >= 100
            deletes = [
                e
                for e in dataset.store.events("emp0001", "windows", day)
                if e.event_id == 4660
            ]
            assert len(deletes) >= 100

    def test_encryption_stops_at_end(self, dataset):
        inj = inject_wannacry(dataset, "emp0001", ATTACK_DAY, encryption_days=2)
        after = inj.end + timedelta(days=1)
        writes = [
            e
            for e in dataset.store.events("emp0001", "sysmon", after)
            if e.target.endswith(".WNCRY")
        ]
        assert writes == []

    def test_rejects_bad_duration(self, dataset):
        with pytest.raises(ValueError):
            inject_wannacry(dataset, "emp0001", ATTACK_DAY, encryption_days=0)
