"""CERT feature extraction tests: novelty semantics and counting."""

from datetime import date, datetime

import numpy as np
import pytest

from repro.features.cert import (
    CERT_ASPECTS,
    extract_baseline_measurements,
    extract_cert_measurements,
)
from repro.logs.schema import DeviceEvent, FileEvent, HttpEvent, LogonEvent
from repro.logs.store import LogStore

D1, D2, D3 = date(2010, 1, 4), date(2010, 1, 5), date(2010, 1, 6)


def ts(day, hour=10):
    return datetime(day.year, day.month, day.day, hour)


@pytest.fixture
def store():
    s = LogStore()
    s.extend(
        [
            # Day 1: two connects to PC-A (both new on day 1), one upload.
            DeviceEvent(ts(D1), "u", "connect", "PC-A"),
            DeviceEvent(ts(D1, 11), "u", "connect", "PC-A"),
            HttpEvent(ts(D1), "u", "upload", "a.com", filetype="doc"),
            # Day 2: connect to PC-A (now known) and PC-B (new); repeat
            # upload to a.com (known) and upload to b.com (new pair).
            DeviceEvent(ts(D2), "u", "connect", "PC-A"),
            DeviceEvent(ts(D2, 20), "u", "connect", "PC-B"),
            HttpEvent(ts(D2), "u", "upload", "a.com", filetype="doc"),
            HttpEvent(ts(D2, 11), "u", "upload", "b.com", filetype="doc"),
            # Day 3: visit to a.com is a new (visit, a.com) pair.
            HttpEvent(ts(D3), "u", "visit", "a.com"),
            # File ops: open F1 twice on day 1, open F1 again day 2 (known),
            # write F1 day 2 (new pair), copy F1 r->l day 3 (new pair).
            FileEvent(ts(D1), "u", "open", "F1", from_location="local"),
            FileEvent(ts(D1, 14), "u", "open", "F1", from_location="local"),
            FileEvent(ts(D2), "u", "open", "F1", from_location="local"),
            FileEvent(ts(D2), "u", "write", "F1", to_location="remote"),
            FileEvent(ts(D3), "u", "copy", "F1", from_location="remote", to_location="local"),
        ]
    )
    s.sort()
    return s


@pytest.fixture
def cube(store):
    return extract_cert_measurements(store, ["u"], [D1, D2, D3])


class TestDeviceFeatures:
    def test_connect_is_raw_count(self, cube):
        np.testing.assert_array_equal(cube.feature_series("u", "device-connect", 0), [2, 1, 0])

    def test_new_host_counts_first_day_repeats(self, cube):
        # Both day-1 connects hit a host unseen before day 1 -> both count.
        assert cube.feature_series("u", "device-new-host", 0)[0] == 2

    def test_known_host_not_new(self, cube):
        # Day 2 working-hours connect to PC-A is not new; PC-B (off hours) is.
        assert cube.feature_series("u", "device-new-host", 0)[1] == 0
        assert cube.feature_series("u", "device-new-host", 1)[1] == 1


class TestFileNoveltyFeatures:
    def test_open_counts_only_new_pairs(self, cube):
        # Day 1: both opens of F1 are new-pair ops; day 2 open is known.
        np.testing.assert_array_equal(
            cube.feature_series("u", "file-open-from-local", 0), [2, 0, 0]
        )

    def test_write_new_pair_on_day2(self, cube):
        np.testing.assert_array_equal(
            cube.feature_series("u", "file-write-to-remote", 0), [0, 1, 0]
        )

    def test_copy_new_pair_on_day3(self, cube):
        np.testing.assert_array_equal(
            cube.feature_series("u", "file-copy-remote-to-local", 0), [0, 0, 1]
        )

    def test_new_op_uses_activity_keys(self, cube):
        # (open,F1) new day1 (twice), (write,F1) new day2, (copy,F1) new day3.
        np.testing.assert_array_equal(cube.feature_series("u", "file-new-op", 0), [2, 1, 1])


class TestHttpNoveltyFeatures:
    def test_upload_doc_new_pairs_only(self, cube):
        # Day1: (doc,a.com) new. Day2: a.com known, b.com new.
        np.testing.assert_array_equal(cube.feature_series("u", "http-upload-doc", 0), [1, 1, 0])

    def test_new_op_counts_visits_too(self, cube):
        # Day1: (upload,a.com). Day2: (upload,b.com). Day3: (visit,a.com).
        np.testing.assert_array_equal(cube.feature_series("u", "http-new-op", 0), [1, 1, 1])


class TestCubeStructure:
    def test_aspects(self, cube):
        assert cube.feature_set.aspect_names == ["device", "file", "http"]
        assert len(cube.feature_set) == 16

    def test_users_without_events_are_zero(self, store):
        cube = extract_cert_measurements(store, ["u", "ghost"], [D1, D2, D3])
        assert cube.user_slice("ghost").sum() == 0

    def test_days_sorted_internally(self, store):
        cube = extract_cert_measurements(store, ["u"], [D3, D1, D2])
        assert cube.days == [D1, D2, D3]

    def test_total_feature_count_matches_paper(self):
        n = sum(len(a.features) for a in CERT_ASPECTS)
        assert n == 16  # 2 device + 7 file + 7 http


class TestBaselineFeatures:
    def test_counts_per_hour_frame(self):
        s = LogStore()
        s.extend(
            [
                LogonEvent(ts(D1, 9), "u", "logon", "PC"),
                LogonEvent(ts(D1, 9), "u", "logon", "PC"),
                LogonEvent(ts(D1, 17), "u", "logoff", "PC"),
                HttpEvent(ts(D1, 9), "u", "visit", "a.com"),
            ]
        )
        cube = extract_baseline_measurements(s, ["u"], [D1])
        assert cube.n_timeframes == 24
        assert cube.values[0, cube.feature_set.index_of("logon"), 9, 0] == 2
        assert cube.values[0, cube.feature_set.index_of("logoff"), 17, 0] == 1
        assert cube.values[0, cube.feature_set.index_of("visit"), 9, 0] == 1

    def test_baseline_has_four_aspects(self):
        s = LogStore()
        s.append(LogonEvent(ts(D1), "u", "logon", "PC"))
        cube = extract_baseline_measurements(s, ["u"], [D1])
        assert cube.feature_set.aspect_names == ["device", "file", "http", "logon"]

    def test_baseline_counts_repeats(self):
        """Unlike ACOBE's novelty features, baseline counts every event."""
        s = LogStore()
        for hour in (9, 10, 11):
            s.append(HttpEvent(ts(D1, hour), "u", "upload", "same.com", filetype="doc"))
        cube = extract_baseline_measurements(s, ["u"], [D1])
        total = cube.values[0, cube.feature_set.index_of("upload")].sum()
        assert total == 3
