"""Feature/aspect spec tests."""

import pytest

from repro.features.spec import AspectSpec, FeatureSet, FeatureSpec


def aspect(name, *features):
    return AspectSpec(name, tuple(FeatureSpec(f, name) for f in features))


class TestSpecs:
    def test_feature_requires_name_and_aspect(self):
        with pytest.raises(ValueError):
            FeatureSpec("", "a")
        with pytest.raises(ValueError):
            FeatureSpec("f", "")

    def test_aspect_rejects_foreign_features(self):
        with pytest.raises(ValueError):
            AspectSpec("a", (FeatureSpec("f", "b"),))

    def test_aspect_rejects_duplicates(self):
        with pytest.raises(ValueError):
            AspectSpec("a", (FeatureSpec("f", "a"), FeatureSpec("f", "a")))

    def test_aspect_rejects_empty(self):
        with pytest.raises(ValueError):
            AspectSpec("a", ())

    def test_feature_names(self):
        a = aspect("a", "x", "y")
        assert a.feature_names == ["x", "y"]


class TestFeatureSet:
    @pytest.fixture
    def feature_set(self):
        return FeatureSet([aspect("one", "a", "b"), aspect("two", "c")])

    def test_len_and_order(self, feature_set):
        assert len(feature_set) == 3
        assert feature_set.feature_names == ["a", "b", "c"]

    def test_index_of(self, feature_set):
        assert feature_set.index_of("c") == 2
        with pytest.raises(KeyError):
            feature_set.index_of("z")

    def test_aspect_lookup(self, feature_set):
        assert feature_set.aspect("two").feature_names == ["c"]
        with pytest.raises(KeyError):
            feature_set.aspect("three")

    def test_aspect_indices(self, feature_set):
        assert feature_set.aspect_indices("one") == [0, 1]
        assert feature_set.aspect_indices("two") == [2]

    def test_rejects_duplicate_aspects(self):
        with pytest.raises(ValueError):
            FeatureSet([aspect("a", "x"), aspect("a", "y")])

    def test_rejects_cross_aspect_duplicate_features(self):
        with pytest.raises(ValueError):
            FeatureSet([aspect("a", "x"), aspect("b", "x")])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FeatureSet([])
