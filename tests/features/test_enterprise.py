"""Enterprise feature extraction tests."""

from datetime import date, datetime

import numpy as np
import pytest

from repro.features.enterprise import ENTERPRISE_ASPECTS, extract_enterprise_measurements
from repro.logs.schema import (
    DnsEvent,
    LogonEvent,
    ProxyEvent,
    SysmonEvent,
    WindowsEvent,
)
from repro.logs.store import LogStore

D1, D2 = date(2021, 7, 5), date(2021, 7, 6)


def ts(day, hour=10):
    return datetime(day.year, day.month, day.day, hour)


@pytest.fixture
def store():
    s = LogStore()
    s.extend(
        [
            # File aspect: two writes to the same target, one to another.
            SysmonEvent(ts(D1), "u", 11, image="w.exe", target="doc1"),
            SysmonEvent(ts(D1, 11), "u", 11, image="w.exe", target="doc1"),
            SysmonEvent(ts(D1, 12), "u", 11, image="w.exe", target="doc2"),
            # Day 2: doc1 known, doc3 new; plus a security-audit file event.
            SysmonEvent(ts(D2), "u", 11, image="w.exe", target="doc1"),
            WindowsEvent(ts(D2), "u", 4663, detail="doc3"),
            # Command aspect: one process creation.
            SysmonEvent(ts(D1), "u", 1, image="cmd.exe"),
            # Config aspect: registry modification.
            SysmonEvent(ts(D1), "u", 13, image="m.exe", target="HKCU\\X"),
            # HTTP: 2 successes (one domain new), 1 failure to new domain.
            ProxyEvent(ts(D1), "u", "a.com", "/", "success", bytes_out=2048),
            ProxyEvent(ts(D1, 11), "u", "a.com", "/", "success"),
            ProxyEvent(ts(D1, 12), "u", "bad.com", "/", "failure"),
            ProxyEvent(ts(D2), "u", "a.com", "/", "success"),
            DnsEvent(ts(D1), "u", "nx.example", resolved=False),
            DnsEvent(ts(D1), "u", "ok.example", resolved=True),
            # Logon: one working-hours, one off-hours, one logoff.
            LogonEvent(ts(D1, 9), "u", "logon", "WS-1"),
            LogonEvent(ts(D1, 22), "u", "logon", "WS-1"),
            LogonEvent(ts(D1, 17), "u", "logoff", "WS-1"),
        ]
    )
    s.sort()
    return s


@pytest.fixture
def cube(store):
    return extract_enterprise_measurements(store, ["u"], [D1, D2])


class TestAspectInventory:
    def test_27_features_across_6_aspects(self):
        assert len(ENTERPRISE_ASPECTS) == 6
        total = sum(len(a.features) for a in ENTERPRISE_ASPECTS)
        assert total == 27
        predictable = [a for a in ENTERPRISE_ASPECTS if a.name in ("file", "command", "config", "resource")]
        assert sum(len(a.features) for a in predictable) == 16


class TestPredictableAspects:
    def test_file_event_count(self, cube):
        np.testing.assert_array_equal(cube.feature_series("u", "file-events", 0), [3, 2])

    def test_file_unique_pairs(self, cube):
        # Day 1: (11,doc1) and (11,doc2) -> 2 unique.
        np.testing.assert_array_equal(cube.feature_series("u", "file-unique", 0), [2, 2])

    def test_file_new_pairs(self, cube):
        # Day 1: all 3 events hit never-seen pairs (doc1 twice counts twice).
        # Day 2: doc1 known, (4663,doc3) new.
        np.testing.assert_array_equal(cube.feature_series("u", "file-new", 0), [3, 1])

    def test_command_and_config_counted(self, cube):
        assert cube.feature_series("u", "command-events", 0)[0] == 1
        assert cube.feature_series("u", "config-events", 0)[0] == 1


class TestHttpAspect:
    def test_success_and_failure_counts(self, cube):
        np.testing.assert_array_equal(cube.feature_series("u", "http-success", 0), [2, 1])
        np.testing.assert_array_equal(cube.feature_series("u", "http-failure", 0), [1, 0])

    def test_new_domain_flags(self, cube):
        # a.com new on day 1 (both successes count, pair-novelty is by domain
        # and both hit an unseen domain that day); bad.com new failure.
        assert cube.feature_series("u", "http-success-new-domain", 0)[0] == 2
        assert cube.feature_series("u", "http-failure-new-domain", 0)[0] == 1
        # Day 2: a.com known.
        assert cube.feature_series("u", "http-success-new-domain", 0)[1] == 0

    def test_distinct_domains(self, cube):
        np.testing.assert_array_equal(cube.feature_series("u", "http-distinct-domains", 0), [2, 1])

    def test_kb_out(self, cube):
        assert cube.feature_series("u", "http-kb-out", 0)[0] == pytest.approx(2.0)

    def test_nxdomain(self, cube):
        np.testing.assert_array_equal(cube.feature_series("u", "http-nxdomain", 0), [1, 0])


class TestLogonAspect:
    def test_success_counts_per_frame(self, cube):
        assert cube.feature_series("u", "logon-success", 0)[0] == 1  # working hours
        assert cube.feature_series("u", "logon-success", 1)[0] == 1  # off hours

    def test_off_hours_flag(self, cube):
        assert cube.feature_series("u", "logon-off-hours", 1)[0] == 1
        assert cube.feature_series("u", "logon-off-hours", 0)[0] == 0

    def test_new_pc_only_first_day(self, cube):
        day1_total = cube.feature_series("u", "logon-new-pc", 0)[0] + cube.feature_series(
            "u", "logon-new-pc", 1
        )[0]
        assert day1_total == 2  # both day-1 logons hit a not-yet-seen PC
        assert cube.feature_series("u", "logon-new-pc", 0)[1] == 0

    def test_logoff(self, cube):
        assert cube.feature_series("u", "logon-logoff", 0)[0] == 1
