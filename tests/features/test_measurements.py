"""MeasurementCube container tests."""

from datetime import date, timedelta

import numpy as np
import pytest

from repro.features.measurements import MeasurementCube
from repro.features.spec import AspectSpec, FeatureSet, FeatureSpec
from repro.utils.timeutil import TWO_TIMEFRAMES


def make_cube(n_users=3, n_days=5):
    fs = FeatureSet(
        [
            AspectSpec("a", (FeatureSpec("a1", "a"), FeatureSpec("a2", "a"))),
            AspectSpec("b", (FeatureSpec("b1", "b"),)),
        ]
    )
    users = [f"u{i}" for i in range(n_users)]
    days = [date(2010, 1, 1) + timedelta(days=i) for i in range(n_days)]
    values = np.arange(n_users * 3 * 2 * n_days, dtype=float).reshape(n_users, 3, 2, n_days)
    return MeasurementCube(values, users, fs, TWO_TIMEFRAMES, days)


class TestValidation:
    def test_shape_mismatch(self):
        cube = make_cube()
        with pytest.raises(ValueError):
            MeasurementCube(
                cube.values[:, :2], cube.users, cube.feature_set, cube.timeframes, cube.days
            )

    def test_duplicate_users(self):
        cube = make_cube()
        with pytest.raises(ValueError):
            MeasurementCube(
                cube.values, ["u0", "u0", "u2"], cube.feature_set, cube.timeframes, cube.days
            )

    def test_unsorted_days(self):
        cube = make_cube()
        with pytest.raises(ValueError):
            MeasurementCube(
                cube.values,
                cube.users,
                cube.feature_set,
                cube.timeframes,
                list(reversed(cube.days)),
            )


class TestAccess:
    def test_indices(self):
        cube = make_cube()
        assert cube.user_index("u1") == 1
        assert cube.day_index(date(2010, 1, 3)) == 2
        with pytest.raises(KeyError):
            cube.user_index("nope")
        with pytest.raises(KeyError):
            cube.day_index(date(2011, 1, 1))

    def test_user_slice(self):
        cube = make_cube()
        np.testing.assert_array_equal(cube.user_slice("u2"), cube.values[2])

    def test_feature_series(self):
        cube = make_cube()
        series = cube.feature_series("u0", "b1", 1)
        np.testing.assert_array_equal(series, cube.values[0, 2, 1])

    def test_select_aspect(self):
        cube = make_cube()
        sub = cube.select_aspect("a")
        assert sub.n_features == 2
        assert sub.feature_set.feature_names == ["a1", "a2"]
        np.testing.assert_array_equal(sub.values, cube.values[:, :2])
        # The selection copies: mutating it must not touch the original.
        sub.values[:] = -1
        assert cube.values.min() >= 0

    def test_group_mean(self):
        cube = make_cube()
        mean = cube.group_mean(["u0", "u2"])
        np.testing.assert_allclose(mean, (cube.values[0] + cube.values[2]) / 2)

    def test_group_mean_empty_raises(self):
        with pytest.raises(ValueError):
            make_cube().group_mean([])

    def test_dims(self):
        cube = make_cube(4, 6)
        assert cube.n_users == 4
        assert cube.n_features == 3
        assert cube.n_timeframes == 2
        assert cube.n_days == 6


class TestConcatCubes:
    def test_concatenates_features(self):
        from repro.features.measurements import concat_cubes

        a = make_cube()
        fs = FeatureSet([AspectSpec("c", (FeatureSpec("c1", "c"),))])
        b = MeasurementCube(
            np.ones((3, 1, 2, 5)), a.users, fs, a.timeframes, a.days
        )
        merged = concat_cubes([a, b])
        assert merged.n_features == 4
        assert merged.feature_set.aspect_names == ["a", "b", "c"]
        np.testing.assert_array_equal(merged.values[:, :3], a.values)
        np.testing.assert_array_equal(merged.values[:, 3:], b.values)

    def test_single_cube_passthrough(self):
        from repro.features.measurements import concat_cubes

        a = make_cube()
        assert concat_cubes([a]) is a

    def test_rejects_user_mismatch(self):
        from repro.features.measurements import concat_cubes

        a = make_cube()
        fs = FeatureSet([AspectSpec("c", (FeatureSpec("c1", "c"),))])
        b = MeasurementCube(
            np.ones((3, 1, 2, 5)), ["x0", "x1", "x2"], fs, a.timeframes, a.days
        )
        with pytest.raises(ValueError, match="users"):
            concat_cubes([a, b])

    def test_rejects_duplicate_aspect_names(self):
        from repro.features.measurements import concat_cubes

        a = make_cube()
        with pytest.raises(ValueError):
            concat_cubes([a, a])

    def test_rejects_empty(self):
        from repro.features.measurements import concat_cubes

        with pytest.raises(ValueError):
            concat_cubes([])
