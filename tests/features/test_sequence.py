"""Markov sequence-model and sequence-feature tests."""

from datetime import date, datetime, timedelta

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.sequence import (
    SEQUENCE_ASPECTS,
    MarkovSequenceModel,
    extract_sequence_surprise,
)
from repro.logs.schema import SysmonEvent
from repro.logs.store import LogStore


class TestMarkovModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovSequenceModel(order=0)
        with pytest.raises(ValueError):
            MarkovSequenceModel(smoothing=0)
        with pytest.raises(ValueError):
            MarkovSequenceModel(top_g=0)

    def test_learns_deterministic_chain(self):
        model = MarkovSequenceModel(order=1, top_g=1)
        model.fit([["a", "b", "c"] * 20])
        assert model.top_predictions(("a",)) == ["b"]
        assert model.top_predictions(("b",)) == ["c"]

    def test_surprise_lower_for_seen_patterns(self):
        model = MarkovSequenceModel(order=1)
        model.fit([["a", "b"] * 50])
        assert model.surprise(["a", "b", "a", "b"]) < model.surprise(["b", "a", "a", "a"])

    def test_unexpected_fraction_bounds(self):
        model = MarkovSequenceModel(order=1, top_g=1)
        model.fit([["a", "b"] * 50])
        assert model.unexpected_fraction(["a", "b", "a", "b"]) == 0.0
        assert model.unexpected_fraction(["z", "z", "z"]) == 1.0

    def test_empty_sequence_scores_zero(self):
        model = MarkovSequenceModel()
        model.fit([["a", "b"]])
        assert model.surprise([]) == 0.0
        assert model.unexpected_fraction([]) == 0.0

    def test_probabilities_sum_below_one_with_smoothing(self):
        model = MarkovSequenceModel(order=1)
        model.fit([["a", "b", "a", "c"]])
        total = sum(model.probability(("a",), s) for s in ["a", "b", "c"])
        assert 0.0 < total <= 1.0

    def test_online_update(self):
        model = MarkovSequenceModel(order=1, top_g=1)
        model.update(["a", "b"] * 10)
        before = model.surprise(["a", "c"])
        model.update(["a", "c"] * 10)
        after = model.surprise(["a", "c"])
        assert after < before

    @given(st.lists(st.sampled_from("abc"), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_surprise_non_negative(self, seq):
        model = MarkovSequenceModel(order=1)
        model.fit([["a", "b", "c", "a"]])
        assert model.surprise(seq) >= 0.0


class TestExtractSequenceSurprise:
    @pytest.fixture
    def store(self):
        s = LogStore()
        days = [date(2021, 7, 5) + timedelta(days=i) for i in range(12)]
        # Habitual pattern every day; the last day is chaotic. The ids mix
        # command-group (1, 4104, 4688) and file-group (11, 2) events.
        for d, day in enumerate(days):
            pattern = [1, 11, 11] * 5 if d < 11 else [4104, 1, 4104, 11, 4688, 2]
            for i, event_id in enumerate(pattern):
                ts = datetime(day.year, day.month, day.day, 10, i)
                s.append(SysmonEvent(ts, "u", event_id, image="x.exe", target="t"))
        s.sort()
        return s, days

    def test_cube_shape_and_aspects(self, store):
        s, days = store
        cube = extract_sequence_surprise(s, ["u"], days, train_days=days[:8])
        assert sorted(cube.feature_set.aspect_names) == ["command-seq", "file-seq"]
        assert cube.values.shape[1] == 4

    def test_chaotic_day_scores_higher(self, store):
        s, days = store
        cube = extract_sequence_surprise(s, ["u"], days, train_days=days[:8])
        surprise = cube.feature_series("u", "command-seq-surprise", 0)
        assert surprise[-1] > surprise[:8].max()

    def test_user_without_events_zero(self, store):
        s, days = store
        cube = extract_sequence_surprise(s, ["u", "ghost"], days, train_days=days[:8])
        assert cube.user_slice("ghost").sum() == 0

    def test_aspect_inventory(self):
        assert len(SEQUENCE_ASPECTS) == 2
        for aspect in SEQUENCE_ASPECTS:
            assert len(aspect.features) == 2
