"""Network save/load round-trip tests."""

import numpy as np
import pytest

from repro.nn.layers import BatchNormalization, Dense, ReLU
from repro.nn.network import Sequential
from repro.nn.serialization import load_network, save_network

RNG = np.random.default_rng(9)


def make_net(seed=0):
    return Sequential([Dense(6), BatchNormalization(), ReLU(), Dense(3)], seed=seed).build(4)


def test_round_trip_preserves_predictions(tmp_path):
    net = make_net()
    net.fit(RNG.uniform(size=(32, 4)), RNG.uniform(size=(32, 3)), epochs=3)
    path = tmp_path / "model.npz"
    save_network(net, path)

    fresh = make_net(seed=123)
    load_network(fresh, path)
    x = RNG.uniform(size=(8, 4))
    np.testing.assert_array_equal(net.predict(x), fresh.predict(x))


def test_round_trip_preserves_batchnorm_stats(tmp_path):
    net = make_net()
    net.fit(RNG.uniform(size=(32, 4)), RNG.uniform(size=(32, 3)), epochs=2)
    path = tmp_path / "model.npz"
    save_network(net, path)
    fresh = make_net(seed=5)
    load_network(fresh, path)
    bn_old = net.layers[1]
    bn_new = fresh.layers[1]
    np.testing.assert_array_equal(bn_old.running_mean, bn_new.running_mean)
    np.testing.assert_array_equal(bn_old.running_var, bn_new.running_var)


def test_save_unbuilt_raises(tmp_path):
    with pytest.raises(ValueError):
        save_network(Sequential([Dense(2)]), tmp_path / "x.npz")


def test_load_into_unbuilt_raises(tmp_path):
    net = make_net()
    path = tmp_path / "model.npz"
    save_network(net, path)
    with pytest.raises(ValueError):
        load_network(Sequential([Dense(2)]), path)


def test_load_architecture_mismatch_raises(tmp_path):
    net = make_net()
    path = tmp_path / "model.npz"
    save_network(net, path)
    other = Sequential([Dense(6), ReLU(), Dense(3)], seed=0).build(4)
    with pytest.raises(ValueError, match="architecture mismatch"):
        load_network(other, path)


def test_load_input_dim_mismatch_raises(tmp_path):
    net = make_net()
    path = tmp_path / "model.npz"
    save_network(net, path)
    other = Sequential([Dense(6), BatchNormalization(), ReLU(), Dense(3)], seed=0).build(5)
    with pytest.raises(ValueError, match="input_dim mismatch"):
        load_network(other, path)
