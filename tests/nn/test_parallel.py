"""Parallel ensemble-training engine tests.

The load-bearing property is *determinism*: for a fixed per-task seed,
``train_ensemble`` must return bit-identical weights, histories and
scores whether it runs serially, across a process pool, or through the
serial fallback path.
"""

import numpy as np
import pytest

from repro.nn import parallel as par
from repro.nn.autoencoder import Autoencoder, AutoencoderConfig
from repro.nn.layers import Dense, Tanh
from repro.nn.network import Sequential
from repro.nn.parallel import (
    AspectTask,
    derive_seed,
    resolve_n_jobs,
    train_ensemble,
)
from repro.nn.serialization import network_from_bytes, network_to_bytes

TINY = AutoencoderConfig(
    encoder_units=(6, 3),
    epochs=3,
    batch_size=8,
    optimizer="adam",
    early_stopping_patience=None,
    validation_split=0.0,
    seed=5,
)


def make_tasks(n_aspects=3, n_samples=24, dim=10, base_seed=5):
    rng = np.random.default_rng(0)
    tasks = []
    for i in range(n_aspects):
        config = AutoencoderConfig(
            encoder_units=TINY.encoder_units,
            epochs=TINY.epochs,
            batch_size=TINY.batch_size,
            optimizer=TINY.optimizer,
            early_stopping_patience=None,
            validation_split=0.0,
            seed=derive_seed(base_seed, i),
        )
        tasks.append(AspectTask(f"aspect{i}", rng.random((n_samples, dim)), config))
    return tasks


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, 0) == derive_seed(7, 0)
        assert derive_seed(7, 3) == derive_seed(7, 3)

    def test_distinct_across_indices(self):
        seeds = [derive_seed(7, i) for i in range(16)]
        assert len(set(seeds)) == 16

    def test_distinct_across_bases(self):
        assert derive_seed(7, 0) != derive_seed(8, 0)

    def test_none_passthrough(self):
        assert derive_seed(None, 4) is None

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            derive_seed(7, -1)

    def test_matches_seed_sequence_spawn_key(self):
        """The contract: SeedSequence(base, spawn_key=(i,)) -> first word."""
        expected = int(
            np.random.SeedSequence(42, spawn_key=(3,)).generate_state(1, dtype=np.uint32)[0]
        )
        assert derive_seed(42, 3) == expected


class TestResolveNJobs:
    def test_serial_default(self):
        assert resolve_n_jobs(None, 4) == 1
        assert resolve_n_jobs(1, 4) == 1

    def test_clamped_to_tasks(self):
        assert resolve_n_jobs(8, 3) == 3

    def test_all_cores(self):
        assert resolve_n_jobs(0, 64) >= 1
        assert resolve_n_jobs(-1, 64) >= 1

    def test_rejects_no_tasks(self):
        with pytest.raises(ValueError):
            resolve_n_jobs(1, 0)


class TestTaskValidation:
    def test_rejects_empty_data(self):
        with pytest.raises(ValueError):
            AspectTask("a", np.zeros((0, 4)), TINY)

    def test_rejects_1d_data(self):
        with pytest.raises(ValueError):
            AspectTask("a", np.zeros(4), TINY)

    def test_rejects_duplicate_names(self):
        tasks = make_tasks(2)
        dup = [tasks[0], AspectTask(tasks[0].name, tasks[1].data, tasks[1].config)]
        with pytest.raises(ValueError, match="duplicate"):
            train_ensemble(dup, n_jobs=1)

    def test_empty_ensemble(self):
        assert train_ensemble([], n_jobs=2) == {}


class TestSerialTraining:
    def test_returns_fitted_members_in_task_order(self):
        tasks = make_tasks(3)
        trained = train_ensemble(tasks, n_jobs=1)
        assert list(trained) == [t.name for t in tasks]
        for task in tasks:
            member = trained[task.name]
            assert member.autoencoder.fitted
            assert member.history.epochs_trained == TINY.epochs

    def test_matches_direct_autoencoder_fit(self):
        """train_ensemble adds nothing on top of Autoencoder.fit."""
        [task] = make_tasks(1)
        trained = train_ensemble([task], n_jobs=1)[task.name]
        direct = Autoencoder(input_dim=task.data.shape[1], config=task.config)
        direct_history = direct.fit(task.data)
        np.testing.assert_array_equal(
            trained.autoencoder.reconstruction_error(task.data),
            direct.reconstruction_error(task.data),
        )
        assert trained.history.loss == direct_history.loss


class TestParallelEqualsSerial:
    def test_bit_identical_scores_and_histories(self):
        tasks = make_tasks(3)
        serial = train_ensemble(tasks, n_jobs=1)
        parallel = train_ensemble(tasks, n_jobs=2)
        assert list(serial) == list(parallel)
        for task in tasks:
            np.testing.assert_array_equal(
                serial[task.name].autoencoder.reconstruction_error(task.data),
                parallel[task.name].autoencoder.reconstruction_error(task.data),
            )
            assert serial[task.name].history.loss == parallel[task.name].history.loss
            assert (
                serial[task.name].history.val_loss
                == parallel[task.name].history.val_loss
            )

    def test_bit_identical_weights(self):
        tasks = make_tasks(2)
        serial = train_ensemble(tasks, n_jobs=1)
        parallel = train_ensemble(tasks, n_jobs=2)
        for name in serial:
            a = serial[name].autoencoder.network.parameters()
            b = parallel[name].autoencoder.network.parameters()
            for pa, pb in zip(a, b):
                np.testing.assert_array_equal(pa.value, pb.value)

    def test_parallel_members_are_fitted(self):
        tasks = make_tasks(2)
        for member in train_ensemble(tasks, n_jobs=2).values():
            assert member.autoencoder.fitted


class TestFallbacks:
    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(par, "ProcessPoolExecutor", broken_pool)
        tasks = make_tasks(2)
        trained = train_ensemble(tasks, n_jobs=2)
        reference = train_ensemble(tasks, n_jobs=1)
        for name in reference:
            np.testing.assert_array_equal(
                trained[name].autoencoder.reconstruction_error(tasks[0].data),
                reference[name].autoencoder.reconstruction_error(tasks[0].data),
            )

    def test_no_fork_platform_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setattr(par, "_fork_context", lambda: None)
        tasks = make_tasks(2)
        trained = train_ensemble(tasks, n_jobs=2)
        assert all(m.autoencoder.fitted for m in trained.values())


class TestWeightTransport:
    def test_bytes_round_trip_is_bit_exact(self):
        net = Sequential([Dense(6), Tanh(), Dense(4)], seed=3).build(4)
        x = np.random.default_rng(1).random((12, 4))
        net.fit(x, epochs=2, optimizer="adam")
        blob = network_to_bytes(net)
        clone = Sequential([Dense(6), Tanh(), Dense(4)], seed=99).build(4)
        network_from_bytes(clone, blob)
        np.testing.assert_array_equal(net.predict(x), clone.predict(x))

    def test_round_trip_preserves_batchnorm_running_stats(self):
        cfg = AutoencoderConfig(
            encoder_units=(6, 3),
            epochs=3,
            batch_size=8,
            early_stopping_patience=None,
            validation_split=0.0,
            seed=2,
        )
        ae = Autoencoder(input_dim=8, config=cfg)
        x = np.random.default_rng(4).random((20, 8))
        ae.fit(x)
        blob = network_to_bytes(ae.network)
        clone = Autoencoder(input_dim=8, config=cfg)
        network_from_bytes(clone.network, blob)
        # Inference uses running statistics; equality proves they moved.
        np.testing.assert_array_equal(ae.reconstruct(x), clone.reconstruct(x))
