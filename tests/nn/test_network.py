"""Sequential container and training-loop tests."""

import numpy as np
import pytest

from repro.nn.gradcheck import numerical_gradient, relative_error
from repro.nn.layers import BatchNormalization, Dense, ReLU, Sigmoid, Tanh
from repro.nn.losses import MeanSquaredError
from repro.nn.network import Sequential

RNG = np.random.default_rng(7)


def make_net(seed=0):
    return Sequential([Dense(8), Tanh(), Dense(4), Tanh(), Dense(2)], seed=seed).build(3)


class TestConstruction:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_build_sets_dims(self):
        net = make_net()
        assert net.input_dim == 3
        assert net.output_dim == 2

    def test_num_parameters(self):
        net = Sequential([Dense(4, use_bias=False)]).build(3)
        assert net.num_parameters() == 12

    def test_rejects_bad_input_dim(self):
        with pytest.raises(ValueError):
            Sequential([Dense(2)]).build(0)


class TestForwardBackward:
    def test_forward_shape(self):
        net = make_net()
        assert net.forward(RNG.normal(size=(5, 3))).shape == (5, 2)

    def test_forward_rejects_wrong_width(self):
        net = make_net()
        with pytest.raises(ValueError):
            net.forward(RNG.normal(size=(5, 4)))

    def test_forward_rejects_1d(self):
        net = make_net()
        with pytest.raises(ValueError):
            net.forward(RNG.normal(size=3))

    def test_full_network_gradcheck(self):
        net = make_net()
        loss = MeanSquaredError()
        x = RNG.normal(size=(4, 3))
        y = RNG.normal(size=(4, 2))

        out = net.forward(x, training=True)
        net.backward(loss.gradient(y, out))
        analytic = {id(p): p.grad.copy() for p in net.parameters()}

        for param in net.parameters():

            def objective(value, _p=param):
                _p.value = value
                return loss.value(y, net.forward(x, training=True))

            numeric = numerical_gradient(objective, param.value.copy())
            assert relative_error(analytic[id(param)], numeric) < 1e-5

    def test_input_gradcheck_through_batchnorm(self):
        net = Sequential([Dense(6), BatchNormalization(), ReLU(), Dense(2)], seed=1).build(3)
        loss = MeanSquaredError()
        x = RNG.normal(size=(6, 3)) + 0.3
        y = np.zeros((6, 2))

        def objective(inp):
            return loss.value(y, net.forward(inp, training=True))

        out = net.forward(x, training=True)
        analytic = net.backward(loss.gradient(y, out))
        numeric = numerical_gradient(objective, x.copy())
        assert relative_error(analytic, numeric) < 1e-4

    def test_predict_batches_match_single_pass(self):
        net = make_net()
        x = RNG.normal(size=(300, 3))
        np.testing.assert_allclose(net.predict(x, batch_size=64), net.predict(x, batch_size=1000))


class TestFit:
    def test_learns_identity(self):
        net = Sequential([Dense(16), Tanh(), Dense(2)], seed=0)
        x = RNG.uniform(-1, 1, size=(256, 2))
        history = net.fit(x, x, epochs=200, batch_size=32, optimizer="adam")
        assert history.loss[-1] < history.loss[0] * 0.1

    def test_autoencodes_by_default_target(self):
        net = Sequential([Dense(4), Tanh(), Dense(3)], seed=0)
        x = RNG.uniform(-1, 1, size=(64, 3))
        history = net.fit(x, epochs=5)
        assert history.epochs_trained == 5

    def test_validation_split_records_val_loss(self):
        net = Sequential([Dense(4), Dense(2)], seed=0)
        x = RNG.normal(size=(50, 2))
        history = net.fit(x, epochs=3, validation_split=0.2)
        assert len(history.val_loss) == 3
        assert history.best_val_loss == min(history.val_loss)

    def test_early_stopping_halts(self):
        net = Sequential([Dense(4), Dense(2)], seed=0)
        x = np.zeros((40, 2))  # trivially learned -> loss plateaus at ~0
        history = net.fit(x, epochs=100, early_stopping_patience=3, optimizer="adam")
        assert history.epochs_trained < 100

    def test_rejects_mismatched_rows(self):
        net = Sequential([Dense(2)])
        with pytest.raises(ValueError):
            net.fit(np.zeros((4, 2)), np.zeros((5, 2)))

    def test_rejects_empty(self):
        net = Sequential([Dense(2)])
        with pytest.raises(ValueError):
            net.fit(np.zeros((0, 2)))

    def test_rejects_bad_split(self):
        net = Sequential([Dense(2)])
        with pytest.raises(ValueError):
            net.fit(np.zeros((4, 2)), validation_split=1.0)

    def test_validation_split_rounding_can_empty_training_set(self):
        """round(4 * 0.9) == 4 holds out every row; must fail loudly."""
        net = Sequential([Dense(2)], seed=0)
        x = RNG.normal(size=(4, 2))
        with pytest.raises(ValueError, match="leaves no training data"):
            net.fit(x, epochs=1, validation_split=0.9)

    def test_validation_split_just_below_rounding_edge_trains(self):
        net = Sequential([Dense(2)], seed=0)
        x = RNG.normal(size=(5, 2))
        history = net.fit(x, epochs=2, validation_split=0.5)
        assert history.epochs_trained == 2
        assert len(history.val_loss) == 2

    def test_batch_size_larger_than_dataset_is_one_full_batch(self):
        x = RNG.normal(size=(10, 3))

        def train(batch_size):
            net = Sequential([Dense(4), Tanh(), Dense(3)], seed=4)
            history = net.fit(x, epochs=3, batch_size=batch_size, optimizer="adam")
            return net.predict(x), history

        oversized, h_big = train(1000)
        exact, h_exact = train(10)
        np.testing.assert_array_equal(oversized, exact)
        assert h_big.loss == h_exact.loss

    def test_early_stopping_patience_zero_stops_at_first_plateau(self):
        x = np.zeros((32, 2))  # loss is flat from the first epoch
        net = Sequential([Dense(4), Dense(2)], seed=0)
        history = net.fit(x, epochs=50, early_stopping_patience=0, optimizer="adam")
        assert 1 <= history.epochs_trained < 50
        # Patience 0 can never outlast patience 1 on the same run.
        net_one = Sequential([Dense(4), Dense(2)], seed=0)
        longer = net_one.fit(x, epochs=50, early_stopping_patience=1, optimizer="adam")
        assert history.epochs_trained <= longer.epochs_trained

    def test_deterministic_given_seed(self):
        x = RNG.normal(size=(64, 3))

        def train():
            net = Sequential([Dense(4), Tanh(), Dense(3)], seed=99)
            net.fit(x, epochs=3, batch_size=16)
            return net.predict(x)

        np.testing.assert_array_equal(train(), train())

    def test_evaluate(self):
        net = Sequential([Dense(2)], seed=0).build(2)
        x = RNG.normal(size=(10, 2))
        assert net.evaluate(x) >= 0.0


class TestDtype:
    def test_float32_training_and_prediction(self):
        net = Sequential([Dense(8), Tanh(), Dense(3)], seed=0, dtype="float32")
        x = RNG.uniform(-1, 1, size=(64, 3))
        history = net.fit(x, epochs=5, optimizer="adam")
        assert history.epochs_trained == 5
        out = net.predict(x)
        assert out.dtype == np.float32
        for p in net.parameters():
            assert p.value.dtype == np.float32

    def test_float32_matches_float64_closely(self):
        x = RNG.uniform(-1, 1, size=(64, 3))

        def train(dtype):
            net = Sequential([Dense(8), Tanh(), Dense(3)], seed=7, dtype=dtype)
            net.fit(x, epochs=10, batch_size=16, optimizer="adam")
            return net.predict(x).astype(np.float64)

        a, b = train("float64"), train("float32")
        assert np.abs(a - b).max() < 1e-2

    def test_rejects_integer_dtype(self):
        with pytest.raises(ValueError):
            Sequential([Dense(2)], dtype="int32")
