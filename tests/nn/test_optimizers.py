"""Optimizer behaviour tests: each optimizer minimizes a simple quadratic."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optimizers import SGD, Adadelta, Adam, Momentum, RMSProp, get_optimizer


def minimize_quadratic(optimizer, steps=400, dim=5, seed=0):
    """Run ``steps`` of gradient descent on f(x) = ||x - target||^2."""
    rng = np.random.default_rng(seed)
    target = rng.normal(size=dim)
    param = Parameter("x", rng.normal(size=dim) + 5.0)
    for _ in range(steps):
        param.grad = 2.0 * (param.value - target)
        optimizer.step([param])
    return float(np.abs(param.value - target).max())


@pytest.mark.parametrize(
    "optimizer,steps",
    [
        (SGD(learning_rate=0.1), 200),
        (Momentum(learning_rate=0.05, momentum=0.9), 200),
        (RMSProp(learning_rate=0.05), 500),
        (Adadelta(), 2000),
        (Adam(learning_rate=0.1), 500),
    ],
    ids=["sgd", "momentum", "rmsprop", "adadelta", "adam"],
)
def test_optimizer_converges_on_quadratic(optimizer, steps):
    assert minimize_quadratic(optimizer, steps=steps) < 1e-2


def test_sgd_exact_step():
    param = Parameter("x", np.array([1.0]))
    param.grad = np.array([0.5])
    SGD(learning_rate=0.2).step([param])
    np.testing.assert_allclose(param.value, [0.9])


def test_momentum_accumulates_velocity():
    param = Parameter("x", np.array([0.0]))
    opt = Momentum(learning_rate=1.0, momentum=0.5)
    param.grad = np.array([1.0])
    opt.step([param])
    first = param.value.copy()
    param.grad = np.array([1.0])
    opt.step([param])
    # Second step moves further than the first (velocity builds up).
    assert abs(param.value[0] - first[0]) > abs(first[0])


def test_adadelta_compresses_gradient_scale():
    """Adadelta's adaptive denominator hugely compresses the six-orders-
    of-magnitude spread between tiny and huge gradients."""
    small = Parameter("s", np.array([1.0]))
    big = Parameter("b", np.array([1.0]))
    opt = Adadelta()
    small.grad = np.array([1e-3])
    big.grad = np.array([1e3])
    opt.step([small, big])
    step_small = abs(1.0 - small.value[0])
    step_big = abs(1.0 - big.value[0])
    assert step_small > 0 and step_big > 0
    # Raw gradients differ by 1e6; updates must differ by < 1e2.
    assert step_big / step_small < 1e2


def test_adam_bias_correction_first_step():
    param = Parameter("x", np.array([0.0]))
    opt = Adam(learning_rate=0.1)
    param.grad = np.array([3.0])
    opt.step([param])
    # With bias correction the first step is ~learning_rate regardless of g.
    np.testing.assert_allclose(param.value, [-0.1], atol=1e-6)


def test_state_is_per_parameter():
    p1 = Parameter("a", np.array([0.0]))
    p2 = Parameter("b", np.array([0.0]))
    opt = Adam(learning_rate=0.1)
    p1.grad = np.array([1.0])
    p2.grad = np.array([-1.0])
    opt.step([p1, p2])
    assert p1.value[0] < 0 < p2.value[0]


def test_iterations_counter():
    opt = SGD()
    param = Parameter("x", np.array([0.0]))
    param.grad = np.array([0.0])
    for _ in range(3):
        opt.step([param])
    assert opt.iterations == 3


def test_registry_lookup_and_kwargs():
    opt = get_optimizer("adadelta", rho=0.9)
    assert isinstance(opt, Adadelta)
    assert opt.rho == 0.9


def test_registry_unknown():
    with pytest.raises(ValueError, match="unknown optimizer"):
        get_optimizer("lion")


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_rejects_nonpositive_learning_rate(bad):
    with pytest.raises(ValueError):
        SGD(learning_rate=bad)


def test_adadelta_rejects_bad_rho():
    with pytest.raises(ValueError):
        Adadelta(rho=1.5)
