"""Callback protocol tests: the observable face of ``Sequential.fit``."""

import numpy as np
import pytest

from repro.nn.callbacks import Callback, CallbackList, EpochLogger, TelemetryCallback
from repro.nn.layers import Dense, Tanh
from repro.nn.network import Sequential
from repro.obs import Telemetry

RNG = np.random.default_rng(11)
X = RNG.normal(size=(24, 6))


def make_net(seed=3):
    return Sequential([Dense(4), Tanh(), Dense(6)], seed=seed).build(6)


class Recorder(Callback):
    """Collects every hook invocation for assertions."""

    def __init__(self):
        self.begin = None
        self.epochs = []
        self.end = None

    def on_train_begin(self, logs):
        self.begin = dict(logs)

    def on_epoch_end(self, epoch, logs):
        self.epochs.append((epoch, dict(logs)))

    def on_train_end(self, history):
        self.end = history


class TestCallbackList:
    def test_dispatches_to_partial_implementations(self):
        class OnlyEpochs:
            def __init__(self):
                self.seen = []

            def on_epoch_end(self, epoch, logs):
                self.seen.append(epoch)

        only = OnlyEpochs()
        cl = CallbackList([only, None])
        cl.on_train_begin({})  # OnlyEpochs lacks the hook; must not raise
        cl.on_epoch_end(0, {})
        cl.on_train_end(None)
        assert only.seen == [0]

    def test_bool_reflects_contents(self):
        assert not CallbackList()
        assert not CallbackList([None])
        assert CallbackList([Callback()])


class TestFitCallbacks:
    def test_hooks_fire_with_full_logs(self):
        recorder = Recorder()
        history = make_net().fit(
            X, epochs=3, batch_size=8, validation_split=0.25, shuffle=False,
            callbacks=[recorder],
        )
        assert recorder.begin["epochs"] == 3
        assert recorder.begin["batch_size"] == 8
        assert [e for e, _ in recorder.epochs] == [0, 1, 2]
        for epoch, logs in recorder.epochs:
            assert logs["epoch"] == epoch
            assert logs["epochs"] == 3
            assert logs["loss"] > 0.0
            assert logs["val_loss"] > 0.0
            assert logs["grad_norm"] > 0.0
            assert logs["learning_rate"] > 0.0
            assert logs["iterations"] > 0
        assert recorder.end is history
        assert [logs["loss"] for _, logs in recorder.epochs] == history.loss
        assert history.grad_norm == [logs["grad_norm"] for _, logs in recorder.epochs]

    def test_val_loss_none_without_split(self):
        recorder = Recorder()
        make_net().fit(X, epochs=1, callbacks=[recorder])
        assert recorder.epochs[0][1]["val_loss"] is None

    def test_early_stopping_reports_actual_epochs(self):
        recorder = Recorder()
        history = make_net().fit(
            X, epochs=50, batch_size=8, validation_split=0.25,
            early_stopping_patience=1, min_delta=10.0, callbacks=[recorder],
        )
        assert len(recorder.epochs) == history.epochs_trained < 50
        assert recorder.end is history

    def test_callbacks_do_not_change_training(self):
        plain = make_net().fit(X, epochs=4, batch_size=8)
        observed = make_net().fit(X, epochs=4, batch_size=8, callbacks=[Recorder()])
        assert plain.loss == observed.loss
        assert plain.grad_norm == observed.grad_norm


class TestEpochLogger:
    def test_verbose_routes_epoch_lines_through_the_logger(self):
        lines = []
        make_net().fit(
            X, epochs=2, batch_size=8, validation_split=0.25, shuffle=False,
            callbacks=[EpochLogger(sink=lines.append)],
        )
        assert len(lines) == 2
        assert lines[0].startswith("epoch 1/2 loss=")
        assert "val_loss=" in lines[0]
        assert lines[1].startswith("epoch 2/2 loss=")

    def test_verbose_flag_prints_via_default_sink(self, capsys):
        make_net().fit(X, epochs=2, batch_size=8, verbose=True)
        out = capsys.readouterr().out
        assert "epoch 1/2 loss=" in out
        assert "epoch 2/2 loss=" in out
        assert "val_loss" not in out  # no validation split configured

    def test_no_output_without_verbose(self, capsys):
        make_net().fit(X, epochs=2, batch_size=8)
        assert capsys.readouterr().out == ""


class TestTelemetryCallback:
    def test_records_training_dynamics(self):
        telemetry = Telemetry(enabled=True)
        make_net().fit(
            X, epochs=3, batch_size=8, validation_split=0.25,
            callbacks=[TelemetryCallback(telemetry, prefix="aspect")],
        )
        snap = telemetry.metrics.snapshot()
        assert snap["counters"]["aspect.epochs"] == 3
        assert snap["histograms"]["aspect.epoch_loss"]["count"] == 3
        assert snap["histograms"]["aspect.val_loss"]["count"] == 3
        assert snap["gauges"]["aspect.grad_norm"] > 0.0

    def test_defaults_to_the_global_telemetry(self):
        from repro.obs import get_telemetry, set_telemetry

        mine = Telemetry(enabled=True)
        previous = set_telemetry(mine)
        try:
            make_net().fit(X, epochs=1, batch_size=8, callbacks=[TelemetryCallback()])
        finally:
            set_telemetry(previous)
        assert mine.metrics.snapshot()["counters"]["nn.epochs"] == 1
        assert get_telemetry() is previous


class TestFitSpan:
    def test_fit_records_a_span_and_counters(self):
        from repro.obs import set_telemetry

        mine = Telemetry(enabled=True)
        previous = set_telemetry(mine)
        try:
            make_net().fit(X, epochs=2, batch_size=8)
        finally:
            set_telemetry(previous)
        span = mine.find_span("nn.fit")
        assert span is not None
        assert span.attributes["samples"] == 24
        assert span.attributes["epochs_trained"] == 2
        counters = mine.metrics.snapshot()["counters"]
        assert counters["nn.fits_total"] == 1
        assert counters["nn.epochs_total"] == 2
        assert counters["nn.batches_total"] == 2 * 3  # 24 rows / batch 8
