"""Layer forward/backward tests, including finite-difference gradchecks."""

import numpy as np
import pytest

from repro.nn.gradcheck import (
    check_layer_input_gradient,
    check_layer_param_gradients,
    numerical_gradient,
    relative_error,
)
from repro.nn.layers import (
    BatchNormalization,
    Dense,
    Dropout,
    LeakyReLU,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
    get_activation,
)

RNG = np.random.default_rng(0)
TOL = 1e-6


def build(layer, input_dim):
    layer.build(input_dim, np.random.default_rng(42))
    return layer


class TestDense:
    def test_forward_shape(self):
        layer = build(Dense(5), 3)
        out = layer.forward(RNG.normal(size=(7, 3)))
        assert out.shape == (7, 5)

    def test_forward_is_affine(self):
        layer = build(Dense(4), 3)
        x1, x2 = RNG.normal(size=(2, 3)), RNG.normal(size=(2, 3))
        lhs = layer.forward(x1 + x2)
        rhs = layer.forward(x1) + layer.forward(x2) - layer.forward(np.zeros((2, 3)))
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)

    def test_input_gradient(self):
        layer = build(Dense(4), 3)
        err = check_layer_input_gradient(layer, RNG.normal(size=(5, 3)))
        assert err < TOL

    def test_param_gradients(self):
        layer = build(Dense(4), 3)
        errors = check_layer_param_gradients(layer, RNG.normal(size=(5, 3)))
        assert set(errors) == {"weight", "bias"}
        assert max(errors.values()) < TOL

    def test_no_bias(self):
        layer = build(Dense(4, use_bias=False), 3)
        assert [p.name for p in layer.parameters()] == ["weight"]
        errors = check_layer_param_gradients(layer, RNG.normal(size=(5, 3)))
        assert errors["weight"] < TOL

    def test_rejects_nonpositive_units(self):
        with pytest.raises(ValueError):
            Dense(0)

    def test_forward_before_build_raises(self):
        with pytest.raises(RuntimeError):
            Dense(4).forward(np.zeros((1, 3)))

    def test_backward_before_forward_raises(self):
        layer = build(Dense(4), 3)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 4)))


class TestBatchNormalization:
    def test_training_normalizes_batch(self):
        layer = build(BatchNormalization(), 4)
        x = RNG.normal(loc=5.0, scale=3.0, size=(64, 4))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_inference_uses_running_stats(self):
        layer = build(BatchNormalization(momentum=0.5), 3)
        x = RNG.normal(size=(32, 3))
        for _ in range(50):
            layer.forward(x, training=True)
        out_inf = layer.forward(x, training=False)
        out_train = layer.forward(x, training=True)
        # After many passes over the same batch the running stats converge
        # to the batch stats, so the two modes agree.
        np.testing.assert_allclose(out_inf, out_train, atol=1e-2)

    def test_input_gradient_training(self):
        layer = build(BatchNormalization(), 3)
        err = check_layer_input_gradient(layer, RNG.normal(size=(6, 3)), training=True)
        assert err < 1e-5

    def test_input_gradient_inference(self):
        layer = build(BatchNormalization(), 3)
        layer.forward(RNG.normal(size=(6, 3)), training=True)  # seed running stats
        err = check_layer_input_gradient(layer, RNG.normal(size=(6, 3)), training=False)
        assert err < 1e-5

    def test_param_gradients(self):
        layer = build(BatchNormalization(), 3)
        # Move gamma/beta off their (0-gradient-degenerate) init point.
        layer.gamma.value = layer.gamma.value + 0.3
        layer.beta.value = layer.beta.value + 0.7
        errors = check_layer_param_gradients(layer, RNG.normal(size=(6, 3)), training=True)
        assert set(errors) == {"gamma", "beta"}
        assert max(errors.values()) < 1e-5

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            BatchNormalization(momentum=1.0)

    def test_state_dict_round_trip(self):
        layer = build(BatchNormalization(), 3)
        layer.forward(RNG.normal(size=(8, 3)), training=True)
        state = layer.state_dict()
        fresh = build(BatchNormalization(), 3)
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(fresh.running_mean, layer.running_mean)
        np.testing.assert_array_equal(fresh.gamma.value, layer.gamma.value)


@pytest.mark.parametrize(
    "layer_factory",
    [ReLU, lambda: LeakyReLU(0.1), Sigmoid, Tanh, Linear],
    ids=["relu", "leaky_relu", "sigmoid", "tanh", "linear"],
)
class TestActivations:
    def test_shape_preserved(self, layer_factory):
        layer = layer_factory()
        x = RNG.normal(size=(4, 6))
        assert layer.forward(x).shape == x.shape

    def test_input_gradient(self, layer_factory):
        layer = layer_factory()
        # Offset away from ReLU's kink at 0 for clean finite differences.
        x = RNG.normal(size=(4, 6)) + np.sign(RNG.normal(size=(4, 6))) * 0.1
        err = check_layer_input_gradient(layer, x)
        assert err < 1e-5


class TestActivationValues:
    def test_relu_clips_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-30, 30, 101).reshape(1, -1)
        out = Sigmoid().forward(x)
        assert np.all(out > 0) and np.all(out < 1)
        np.testing.assert_allclose(out + out[:, ::-1], 1.0, atol=1e-12)

    def test_sigmoid_extreme_inputs_stable(self):
        out = Sigmoid().forward(np.array([[-1e4, 1e4]]))
        assert np.isfinite(out).all()

    def test_leaky_relu_slope(self):
        out = LeakyReLU(0.2).forward(np.array([[-10.0, 10.0]]))
        np.testing.assert_allclose(out, [[-2.0, 10.0]])

    def test_get_activation_unknown(self):
        with pytest.raises(ValueError, match="unknown activation"):
            get_activation("swish")


class TestDropout:
    def test_inference_is_identity(self):
        layer = Dropout(0.5, seed=0)
        x = RNG.normal(size=(8, 4))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_scales_kept_units(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((2000, 10))
        out = layer.forward(x, training=True)
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)
        # Mean preserved in expectation.
        assert abs(out.mean() - 1.0) < 0.1

    def test_backward_masks_gradient(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_rejects_rate_one(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestGradcheckHelpers:
    def test_numerical_gradient_of_quadratic(self):
        x = RNG.normal(size=(3,))
        grad = numerical_gradient(lambda v: float((v**2).sum()), x.copy())
        np.testing.assert_allclose(grad, 2 * x, atol=1e-6)

    def test_relative_error_zero_for_identical(self):
        a = RNG.normal(size=(4, 4))
        assert relative_error(a, a.copy()) == 0.0
