"""Loss value/gradient tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.gradcheck import numerical_gradient, relative_error
from repro.nn.losses import MeanAbsoluteError, MeanSquaredError, get_loss

RNG = np.random.default_rng(3)

finite_floats = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestMeanSquaredError:
    def test_zero_for_perfect_prediction(self):
        x = RNG.normal(size=(4, 3))
        assert MeanSquaredError().value(x, x.copy()) == 0.0

    def test_known_value(self):
        y = np.array([[0.0, 0.0]])
        p = np.array([[1.0, 3.0]])
        assert MeanSquaredError().value(y, p) == pytest.approx(5.0)

    def test_gradient_matches_numeric(self):
        loss = MeanSquaredError()
        y = RNG.normal(size=(3, 4))
        p = RNG.normal(size=(3, 4))
        analytic = loss.gradient(y, p)
        numeric = numerical_gradient(lambda v: loss.value(y, v), p.copy())
        assert relative_error(analytic, numeric) < 1e-6

    def test_per_sample_mean_equals_value(self):
        y = RNG.normal(size=(5, 3))
        p = RNG.normal(size=(5, 3))
        per = MeanSquaredError.per_sample(y, p)
        assert per.shape == (5,)
        assert per.mean() == pytest.approx(MeanSquaredError().value(y, p))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MeanSquaredError().value(np.zeros((2, 2)), np.zeros((2, 3)))

    @given(arrays(np.float64, (4, 3), elements=finite_floats))
    @settings(max_examples=25, deadline=None)
    def test_non_negative(self, p):
        y = np.zeros((4, 3))
        assert MeanSquaredError().value(y, p) >= 0.0


class TestMeanAbsoluteError:
    def test_known_value(self):
        y = np.array([[0.0, 0.0]])
        p = np.array([[1.0, -3.0]])
        assert MeanAbsoluteError().value(y, p) == pytest.approx(2.0)

    def test_gradient_matches_numeric_away_from_kink(self):
        loss = MeanAbsoluteError()
        y = np.zeros((3, 4))
        p = RNG.normal(size=(3, 4)) + np.sign(RNG.normal(size=(3, 4)))
        analytic = loss.gradient(y, p)
        numeric = numerical_gradient(lambda v: loss.value(y, v), p.copy())
        assert relative_error(analytic, numeric) < 1e-6

    def test_per_sample(self):
        y = np.zeros((2, 2))
        p = np.array([[1.0, 1.0], [2.0, 0.0]])
        np.testing.assert_allclose(MeanAbsoluteError.per_sample(y, p), [1.0, 1.0])


class TestLossRegistry:
    def test_lookup(self):
        assert isinstance(get_loss("mse"), MeanSquaredError)
        assert isinstance(get_loss("mae"), MeanAbsoluteError)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown loss"):
            get_loss("huber")
