"""Full-stack gradient checks for the paper's autoencoder architecture.

The per-layer gradchecks in test_layers.py verify each backward pass in
isolation; these tests verify the exact composite the paper trains --
Dense/BatchNorm/ReLU chains with a sigmoid head -- end to end, plus the
training dynamics (loss decreases under Adadelta, BN statistics move).
"""

import numpy as np
import pytest

from repro.nn.autoencoder import Autoencoder, AutoencoderConfig
from repro.nn.gradcheck import numerical_gradient, relative_error
from repro.nn.layers import BatchNormalization
from repro.nn.losses import MeanSquaredError

pytestmark = pytest.mark.slow

RNG = np.random.default_rng(21)


@pytest.fixture
def tiny_ae():
    cfg = AutoencoderConfig(
        encoder_units=(6, 3),
        epochs=1,
        batch_size=8,
        early_stopping_patience=None,
        validation_split=0.0,
        seed=5,
    )
    return Autoencoder(input_dim=5, config=cfg)


def test_composite_parameter_gradients(tiny_ae):
    net = tiny_ae.network
    loss = MeanSquaredError()
    x = RNG.uniform(0.2, 0.8, size=(6, 5))

    # Move BatchNorm parameters off their degenerate init (gamma=1,
    # beta=0 makes several gradients numerically ~0, where relative
    # error is meaningless), and keep ReLU inputs away from the kink.
    for layer in net.layers:
        if isinstance(layer, BatchNormalization):
            layer.gamma.value = layer.gamma.value + 0.2
            layer.beta.value = layer.beta.value + 0.3

    out = net.forward(x, training=True)
    net.backward(loss.gradient(x, out))
    analytic = {id(p): p.grad.copy() for p in net.parameters()}

    worst = 0.0
    for param in net.parameters():

        def objective(value, _p=param):
            _p.value = value
            return loss.value(x, net.forward(x, training=True))

        numeric = numerical_gradient(objective, param.value.copy())
        a = analytic[id(param)]
        # A Dense bias followed by BatchNorm has a true gradient of
        # exactly zero (the batch mean subtracts it); relative error on
        # pure float noise is meaningless there.
        if np.abs(a).max() < 1e-8 and np.abs(numeric).max() < 1e-8:
            continue
        worst = max(worst, relative_error(a, numeric))
    assert worst < 1e-4


def test_adadelta_training_reduces_loss(tiny_ae):
    cfg = AutoencoderConfig(
        encoder_units=(16, 8),
        epochs=120,
        batch_size=16,
        optimizer="adadelta",
        early_stopping_patience=None,
        validation_split=0.0,
        seed=5,
    )
    ae = Autoencoder(input_dim=6, config=cfg)
    # Structured data on a low-dimensional manifold.
    t = RNG.uniform(size=(128, 1))
    x = np.clip(0.5 + 0.3 * np.sin(t * 3 + np.arange(6)), 0, 1)
    history = ae.fit(x)
    assert history.loss[-1] < 0.5 * history.loss[0]


def test_batchnorm_running_stats_move_during_fit(tiny_ae):
    bn_layers = [l for l in tiny_ae.network.layers if isinstance(l, BatchNormalization)]
    assert bn_layers, "paper architecture includes BatchNormalization"
    before = [l.running_mean.copy() for l in bn_layers]
    tiny_ae.fit(RNG.uniform(0.3, 0.7, size=(32, 5)))
    moved = any(
        not np.allclose(l.running_mean, b) for l, b in zip(bn_layers, before)
    )
    assert moved


def test_inference_deterministic_after_fit(tiny_ae):
    x = RNG.uniform(size=(16, 5))
    tiny_ae.fit(x)
    a = tiny_ae.reconstruction_error(x)
    b = tiny_ae.reconstruction_error(x)
    np.testing.assert_array_equal(a, b)
