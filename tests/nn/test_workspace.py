"""Unit tests for the repro.nn.workspace buffer arena."""

import os

import numpy as np
import pytest

from repro.nn.workspace import (
    Workspace,
    arena_enabled,
    resolve_arena,
    set_arena_enabled,
)


@pytest.fixture(autouse=True)
def _clean_arena_state(monkeypatch):
    monkeypatch.delenv("ACOBE_NN_ARENA", raising=False)
    previous = set_arena_enabled(None)
    yield
    set_arena_enabled(previous)


class TestAcquire:
    def test_returns_requested_shape_and_dtype(self):
        ws = Workspace()
        buf = ws.acquire((3, 4), np.float32)
        assert buf.shape == (3, 4)
        assert buf.dtype == np.float32

    def test_scalar_shape(self):
        ws = Workspace()
        assert ws.acquire(5).shape == (5,)

    def test_distinct_buffers_within_generation(self):
        ws = Workspace()
        a = ws.acquire((2, 2))
        b = ws.acquire((2, 2))
        assert a is not b

    def test_recycles_in_acquisition_order_across_generations(self):
        ws = Workspace()
        a = ws.acquire((2, 2))
        b = ws.acquire((2, 2))
        ws.reset()
        assert ws.acquire((2, 2)) is a
        assert ws.acquire((2, 2)) is b

    def test_pools_are_keyed_by_shape_and_dtype(self):
        ws = Workspace()
        a64 = ws.acquire((2, 2), np.float64)
        a32 = ws.acquire((2, 2), np.float32)
        ab = ws.acquire((2, 2), np.bool_)
        assert len({id(a64), id(a32), id(ab)}) == 3
        ws.reset()
        assert ws.acquire((2, 2), np.float64) is a64
        assert ws.acquire((2, 2), np.float32) is a32
        assert ws.acquire((2, 2), np.bool_) is ab

    def test_growth_within_generation_then_full_reuse(self):
        ws = Workspace()
        first = [ws.acquire((4,)) for _ in range(3)]
        ws.reset()
        second = [ws.acquire((4,)) for _ in range(3)]
        assert all(a is b for a, b in zip(first, second))
        stats = ws.stats()
        assert stats.misses == 3
        assert stats.hits == 3

    def test_clear_drops_buffers(self):
        ws = Workspace()
        a = ws.acquire((8, 8))
        ws.clear()
        assert ws.stats().live_bytes == 0
        assert ws.stats().buffers == 0
        ws.reset()
        assert ws.acquire((8, 8)) is not a


class TestStats:
    def test_counters(self):
        ws = Workspace()
        ws.acquire((2, 3))
        ws.reset()
        ws.acquire((2, 3))
        ws.acquire((5,), np.float32)
        stats = ws.stats()
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.buffers == 2
        assert stats.generations == 1
        expected = 2 * 3 * 8 + 5 * 4
        assert stats.live_bytes == expected
        assert stats.peak_bytes == expected
        assert stats.hit_rate == pytest.approx(1 / 3)

    def test_hit_rate_zero_when_unused(self):
        assert Workspace().stats().hit_rate == 0.0

    def test_publish_duck_typed(self):
        class FakeMetric:
            def __init__(self):
                self.value = 0

            def inc(self, n):
                self.value += n

            def set(self, v):
                self.value = v

        class FakeTelemetry:
            def __init__(self):
                self.metrics = {}

            def counter(self, name):
                return self.metrics.setdefault(name, FakeMetric())

            gauge = counter

        ws = Workspace()
        ws.acquire((2, 2))
        ws.reset()
        ws.acquire((2, 2))
        telemetry = FakeTelemetry()
        ws.publish(telemetry)
        assert telemetry.metrics["nn.arena.hits"].value == 1
        assert telemetry.metrics["nn.arena.misses"].value == 1
        assert telemetry.metrics["nn.arena.peak_bytes"].value == 32
        assert telemetry.metrics["nn.arena.buffers"].value == 1


class TestEnablement:
    def test_default_on(self):
        assert arena_enabled() is True
        assert resolve_arena(None) is True

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", " OFF "])
    def test_env_disables(self, value):
        os.environ["ACOBE_NN_ARENA"] = value
        try:
            assert arena_enabled() is False
        finally:
            del os.environ["ACOBE_NN_ARENA"]

    @pytest.mark.parametrize("value", ["1", "on", "yes", ""])
    def test_env_other_values_keep_default(self, value):
        os.environ["ACOBE_NN_ARENA"] = value
        try:
            assert arena_enabled() is True
        finally:
            del os.environ["ACOBE_NN_ARENA"]

    def test_global_override_beats_env(self):
        os.environ["ACOBE_NN_ARENA"] = "0"
        try:
            previous = set_arena_enabled(True)
            assert previous is None
            assert arena_enabled() is True
            assert set_arena_enabled(None) is True
            assert arena_enabled() is False
        finally:
            del os.environ["ACOBE_NN_ARENA"]

    def test_explicit_wins_over_default(self):
        set_arena_enabled(False)
        assert resolve_arena(True) is True
        assert resolve_arena(False) is False
        assert resolve_arena(None) is False
