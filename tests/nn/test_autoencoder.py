"""Autoencoder architecture and anomaly-scoring tests."""

import numpy as np
import pytest

from repro.nn.autoencoder import Autoencoder, AutoencoderConfig
from repro.nn.layers import BatchNormalization, Dense, ReLU, Sigmoid

RNG = np.random.default_rng(5)

TINY = AutoencoderConfig(
    encoder_units=(16, 4),
    epochs=60,
    batch_size=16,
    optimizer="adam",
    early_stopping_patience=None,
    validation_split=0.0,
    seed=2,
)


class TestArchitecture:
    def test_paper_layer_stack(self):
        ae = Autoencoder(input_dim=100)
        dense_units = [l.units for l in ae.network.layers if isinstance(l, Dense)]
        assert dense_units == [512, 256, 128, 64, 128, 256, 512, 100]

    def test_batchnorm_between_hidden_layers(self):
        ae = Autoencoder(input_dim=10, config=AutoencoderConfig(encoder_units=(8, 4)))
        kinds = [type(l).__name__ for l in ae.network.layers]
        # Dense/BN/ReLU triplets for hidden layers, Dense+Sigmoid head.
        assert kinds[:3] == ["Dense", "BatchNormalization", "ReLU"]
        assert kinds[-2:] == ["Dense", "Sigmoid"]

    def test_no_batchnorm_option(self):
        cfg = AutoencoderConfig(encoder_units=(8, 4), batch_norm=False)
        ae = Autoencoder(input_dim=10, config=cfg)
        assert not any(isinstance(l, BatchNormalization) for l in ae.network.layers)

    def test_code_dim(self):
        assert Autoencoder(6, AutoencoderConfig(encoder_units=(8, 3))).code_dim == 3

    def test_rejects_bad_input_dim(self):
        with pytest.raises(ValueError):
            Autoencoder(0)

    def test_config_rejects_empty_units(self):
        with pytest.raises(ValueError):
            AutoencoderConfig(encoder_units=())

    def test_scaled_config(self):
        scaled = AutoencoderConfig().scaled(0.25)
        assert scaled.encoder_units == (128, 64, 32, 16)
        tiny = AutoencoderConfig(encoder_units=(4,)).scaled(0.01)
        assert tiny.encoder_units == (2,)  # floor at 2


class TestTrainingAndScoring:
    def test_reconstruction_error_shape(self):
        ae = Autoencoder(8, TINY)
        x = RNG.uniform(size=(20, 8))
        ae.fit(x)
        assert ae.reconstruction_error(x).shape == (20,)

    def test_anomaly_scores_higher_for_outliers(self):
        cfg = AutoencoderConfig(
            encoder_units=(16, 2),
            epochs=150,
            batch_size=32,
            optimizer="adam",
            early_stopping_patience=None,
            validation_split=0.0,
            seed=2,
        )
        ae = Autoencoder(8, cfg)
        # Normal data lives on a 1-D manifold inside [0,1]^8.
        t = RNG.uniform(size=(300, 1))
        normal = np.clip(0.5 + 0.4 * np.sin(t + np.arange(8)), 0, 1)
        ae.fit(normal)
        anomalies = RNG.uniform(size=(50, 8))
        normal_scores = ae.reconstruction_error(normal)
        anomaly_scores = ae.reconstruction_error(anomalies)
        assert anomaly_scores.mean() > 3 * normal_scores.mean()

    def test_encode_returns_code(self):
        ae = Autoencoder(8, TINY)
        x = RNG.uniform(size=(5, 8))
        code = ae.encode(x)
        assert code.shape == (5, TINY.encoder_units[-1])

    def test_reconstruct_in_unit_interval(self):
        ae = Autoencoder(8, TINY)
        x = RNG.uniform(size=(12, 8))
        ae.fit(x)
        recon = ae.reconstruct(x)
        assert np.all(recon >= 0) and np.all(recon <= 1)

    def test_mae_metric(self):
        ae = Autoencoder(4, TINY)
        x = RNG.uniform(size=(12, 4))
        ae.fit(x)
        assert ae.reconstruction_error(x, metric="mae").shape == (12,)

    def test_unknown_metric(self):
        ae = Autoencoder(4, TINY)
        with pytest.raises(ValueError):
            ae.reconstruction_error(np.zeros((1, 4)), metric="rmse")

    def test_accepts_1d_row(self):
        ae = Autoencoder(4, TINY)
        assert ae.reconstruction_error(np.zeros(4)).shape == (1,)

    def test_rejects_wrong_width(self):
        ae = Autoencoder(4, TINY)
        with pytest.raises(ValueError):
            ae.reconstruct(np.zeros((2, 5)))

    def test_fitted_flag(self):
        ae = Autoencoder(4, TINY)
        assert not ae.fitted
        ae.fit(RNG.uniform(size=(12, 4)))
        assert ae.fitted
