"""Bit-identity of the arena kernel path vs the legacy allocating path.

The tentpole guarantee of the workspace arena (repro.nn.workspace) is
that it changes *allocation only*: in float64, training and scoring on
the kernel path produce bit-for-bit the same weights, histories and
predictions as the legacy path.  These tests pin that guarantee --
property-based over random architectures, batch sizes and
early-stopping cuts -- plus a gradcheck matrix over every layer x
optimizer combination in both dtypes, and a detection-quality tolerance
test for the (explicitly non-bit-identical) float32 mode.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.data import ArrayRowSource
from repro.nn.gradcheck import (
    check_layer_input_gradient,
    check_layer_param_gradients,
)
from repro.nn.layers import (
    BatchNormalization,
    Dense,
    Dropout,
    LeakyReLU,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.network import Sequential
from repro.nn.optimizers import get_optimizer
from repro.nn.workspace import Workspace

RNG = np.random.default_rng(11)

OPTIMIZERS = ("sgd", "momentum", "rmsprop", "adadelta", "adam")
ACTIVATIONS = {
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "linear": Linear,
}


def _make_net(units, activation, batch_norm, dropout, seed, dtype, out_dim):
    layers = []
    for i, u in enumerate(units):
        layers.append(Dense(u))
        if batch_norm:
            layers.append(BatchNormalization())
        layers.append(ACTIVATIONS[activation]())
        if dropout and i == 0:
            layers.append(Dropout(0.25, seed=13))
    layers.append(Dense(out_dim))
    layers.append(ACTIVATIONS[activation]())
    return Sequential(layers, seed=seed, dtype=dtype)


def _histories_equal(a, b):
    return a.loss == b.loss and a.val_loss == b.val_loss and a.grad_norm == b.grad_norm


def _params_identical(a, b):
    pa, pb = a.parameters(), b.parameters()
    assert len(pa) == len(pb)
    return all(np.array_equal(p.value, q.value) for p, q in zip(pa, pb))


class TestTrainingBitIdentity:
    """Arena-path float64 training == legacy-path training, bit for bit."""

    @given(
        n_samples=st.integers(min_value=12, max_value=60),
        width=st.integers(min_value=3, max_value=10),
        units=st.lists(st.integers(min_value=2, max_value=12), min_size=1, max_size=3),
        activation=st.sampled_from(sorted(ACTIVATIONS)),
        batch_norm=st.booleans(),
        dropout=st.booleans(),
        batch_size=st.integers(min_value=1, max_value=24),
        validation_split=st.sampled_from([0.0, 0.2]),
        patience=st.sampled_from([None, 1, 2]),
        optimizer=st.sampled_from(OPTIMIZERS),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_architectures(
        self,
        n_samples,
        width,
        units,
        activation,
        batch_norm,
        dropout,
        batch_size,
        validation_split,
        patience,
        optimizer,
        seed,
    ):
        data = np.random.default_rng(seed).random((n_samples, width))
        kwargs = dict(
            epochs=3,
            batch_size=batch_size,
            optimizer=optimizer,
            validation_split=validation_split,
            early_stopping_patience=patience,
        )
        legacy = _make_net(units, activation, batch_norm, dropout, seed, "float64", width)
        h_legacy = legacy.fit(data, use_workspace=False, **kwargs)
        kernel = _make_net(units, activation, batch_norm, dropout, seed, "float64", width)
        h_kernel = kernel.fit(data, use_workspace=True, **kwargs)

        assert _histories_equal(h_legacy, h_kernel)
        assert _params_identical(legacy, kernel)
        probe = np.random.default_rng(seed + 1).random((7, width))
        assert np.array_equal(
            legacy.predict(probe, use_workspace=False),
            kernel.predict(probe, use_workspace=True),
        )

    def test_row_source_training_matches_dense(self):
        data = RNG.random((40, 6))
        a = _make_net([5], "relu", True, False, 3, "float64", 6)
        a.fit(data, epochs=2, batch_size=8, use_workspace=True)
        b = _make_net([5], "relu", True, False, 3, "float64", 6)
        b.fit(ArrayRowSource(data), epochs=2, batch_size=8, use_workspace=True)
        assert _params_identical(a, b)

    def test_distinct_xy_targets(self):
        x = RNG.random((30, 5))
        y = RNG.random((30, 4))
        a = _make_net([4], "tanh", False, False, 9, "float64", 4)
        ha = a.fit(x, y, epochs=3, batch_size=7, use_workspace=False)
        b = _make_net([4], "tanh", False, False, 9, "float64", 4)
        hb = b.fit(x, y, epochs=3, batch_size=7, use_workspace=True)
        assert _histories_equal(ha, hb)
        assert _params_identical(a, b)

    def test_predict_chunked_output_is_identical(self):
        net = _make_net([6, 4], "sigmoid", True, False, 1, "float64", 8)
        data = RNG.random((50, 8))
        net.fit(data, epochs=1, batch_size=16)
        probe = RNG.random((33, 8))
        assert np.array_equal(
            net.predict(probe, batch_size=10, use_workspace=True),
            net.predict(probe, batch_size=10, use_workspace=False),
        )
        # Chunk size must not affect the result either.
        assert np.array_equal(
            net.predict(probe, batch_size=7, use_workspace=True),
            net.predict(probe, batch_size=1024, use_workspace=True),
        )

    def test_workspace_reuses_buffers_across_steps(self):
        net = _make_net([6, 4], "relu", True, True, 2, "float64", 8)
        data = RNG.random((64, 8))
        net.fit(data, epochs=1, batch_size=16, use_workspace=True)
        after_first = net.workspace.stats()
        net.fit(data, epochs=2, batch_size=16, use_workspace=True)
        after_more = net.workspace.stats()
        # Steady state: further epochs allocate nothing new.
        assert after_more.misses == after_first.misses
        assert after_more.hits > after_first.hits
        assert after_more.peak_bytes == after_first.peak_bytes


class TestFloat32Mode:
    """float32 is a documented non-bit-identical throughput mode."""

    @pytest.mark.parametrize("optimizer", OPTIMIZERS)
    def test_kernel_path_tracks_legacy_path(self, optimizer):
        data = RNG.random((48, 10))
        a = _make_net([8, 6], "relu", True, False, 4, "float32", 10)
        ha = a.fit(data, epochs=3, batch_size=8, optimizer=optimizer, use_workspace=False)
        b = _make_net([8, 6], "relu", True, False, 4, "float32", 10)
        hb = b.fit(data, epochs=3, batch_size=8, optimizer=optimizer, use_workspace=True)
        # Same ops, same order: float32 kernels agree with float32 legacy
        # closely (often exactly); the tolerance guards rounding-mode
        # differences on exotic BLAS builds.
        for p, q in zip(a.parameters(), b.parameters()):
            np.testing.assert_allclose(p.value, q.value, rtol=1e-5, atol=1e-6)
        assert hb.loss == pytest.approx(ha.loss, rel=1e-4)

    def test_float32_close_to_float64(self):
        data = RNG.random((48, 10))
        a = _make_net([8, 6], "relu", True, False, 4, "float64", 10)
        a.fit(data, epochs=5, batch_size=8)
        b = _make_net([8, 6], "relu", True, False, 4, "float32", 10)
        b.fit(data, epochs=5, batch_size=8)
        # Training trajectories agree to float32-level precision.
        assert b.evaluate(data) == pytest.approx(a.evaluate(data), rel=1e-3)

    def test_float32_detection_quality(self):
        """Reconstruction-error ranking survives the dtype change."""
        rng = np.random.default_rng(17)
        normal = rng.uniform(0.3, 0.7, size=(120, 12))
        anomalous = rng.uniform(0.0, 1.0, size=(8, 12))

        def auc_for(dtype):
            net = _make_net([8, 4], "relu", True, False, 6, dtype, 12)
            net.fit(normal, epochs=30, batch_size=16)
            scores = []
            for batch in (normal, anomalous):
                recon = net.predict(batch)
                scores.append(np.mean((batch - recon) ** 2, axis=1))
            s_normal, s_anom = scores
            # Probability an anomaly outscores a normal row (ROC-AUC).
            return float(np.mean(s_anom[:, None] > s_normal[None, :]))

        auc64 = auc_for("float64")
        auc32 = auc_for("float32")
        assert auc64 > 0.9
        assert abs(auc64 - auc32) < 0.05


class TestGradcheckMatrix:
    """Kernel-path gradients are correct for every layer, both dtypes."""

    LAYER_FACTORIES = {
        "dense": lambda: Dense(5),
        "dense_no_bias": lambda: Dense(5, use_bias=False),
        "batch_norm": lambda: BatchNormalization(),
        "relu": ReLU,
        "leaky_relu": LeakyReLU,
        "sigmoid": Sigmoid,
        "tanh": Tanh,
        "linear": Linear,
    }

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("name", sorted(LAYER_FACTORIES))
    def test_layer_gradients_on_kernel_path(self, name, dtype):
        layer = self.LAYER_FACTORIES[name]()
        rng = np.random.default_rng(23)
        layer.build(4, rng, dtype=np.dtype(dtype))
        if name == "batch_norm":
            # Move gamma/beta off their 0-gradient-degenerate init point.
            layer.gamma.value = layer.gamma.value + np.asarray(0.3, layer.gamma.value.dtype)
            layer.beta.value = layer.beta.value + np.asarray(0.7, layer.beta.value.dtype)
        # Keep ReLU-family inputs away from the kink at 0.
        x = rng.uniform(0.2, 0.9, size=(6, 4))
        ws = Workspace()
        err = check_layer_input_gradient(layer, x, ws=ws)
        assert err < 1e-5, f"{name}/{dtype}: input gradient error {err}"
        # Parameter perturbations happen in the parameter's own dtype, so
        # float32 needs a coarser step (1e-6 is below float32 resolution)
        # and a correspondingly looser tolerance.
        eps, tol = (1e-6, 1e-5) if dtype == "float64" else (1e-3, 1e-2)
        param_errors = check_layer_param_gradients(layer, x, ws=ws, eps=eps)
        for pname, perr in param_errors.items():
            assert perr < tol, f"{name}/{dtype}/{pname}: gradient error {perr}"

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("optimizer", OPTIMIZERS)
    def test_optimizer_kernels_match_legacy(self, optimizer, dtype):
        """Each optimizer's in-place kernel reproduces its legacy update."""

        def run(use_ws):
            opt = get_optimizer(optimizer)
            layer = Dense(3)
            layer.build(4, np.random.default_rng(7), dtype=np.dtype(dtype))
            ws = Workspace() if use_ws else None
            for step in range(5):
                g = np.random.default_rng(100 + step).normal(size=(4, 3))
                layer.weight.grad[...] = g.astype(layer.weight.grad.dtype)
                layer.bias.grad[...] = g[0].astype(layer.bias.grad.dtype)
                if ws is not None:
                    ws.reset()
                opt.step([layer.weight, layer.bias], ws=ws)
            return layer

        legacy = run(False)
        kernel = run(True)
        assert np.array_equal(legacy.weight.value, kernel.weight.value)
        assert np.array_equal(legacy.bias.value, kernel.bias.value)

    @pytest.mark.parametrize("optimizer", OPTIMIZERS)
    @pytest.mark.parametrize("activation", sorted(ACTIVATIONS))
    def test_layer_optimizer_cross_bit_identity(self, activation, optimizer):
        """Every activation x optimizer combination trains bit-identically
        on the kernel path (with BatchNorm and Dropout in the stack)."""
        data = np.random.default_rng(41).random((24, 5))
        kwargs = dict(epochs=2, batch_size=6, optimizer=optimizer)
        a = _make_net([4], activation, True, True, 8, "float64", 5)
        ha = a.fit(data, use_workspace=False, **kwargs)
        b = _make_net([4], activation, True, True, 8, "float64", 5)
        hb = b.fit(data, use_workspace=True, **kwargs)
        assert _histories_equal(ha, hb)
        assert _params_identical(a, b)

    def test_dropout_gradient_kernel_path(self):
        # Dropout is stochastic: compare kernel backward against the
        # legacy backward under the same mask (same RNG seed).
        x = RNG.uniform(0.2, 0.9, size=(6, 4))
        grad = RNG.normal(size=(6, 4))

        legacy = Dropout(0.3, seed=5)
        out_legacy = legacy.forward(x, training=True)
        g_legacy = legacy.backward(grad.copy())

        kernel = Dropout(0.3, seed=5)
        ws = Workspace()
        out_kernel = kernel.forward(x, training=True, ws=ws)
        g_kernel = kernel.backward(grad.copy(), ws=ws)

        assert np.array_equal(out_legacy, out_kernel)
        assert np.array_equal(g_legacy, g_kernel)


class TestParameterDtype:
    """Parameter honours the build dtype at construction (no re-cast)."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_dense_build_allocates_in_dtype(self, dtype):
        layer = Dense(3)
        layer.build(4, np.random.default_rng(0), dtype=dtype)
        assert layer.weight.value.dtype == dtype
        assert layer.weight.grad.dtype == dtype
        assert layer.bias.value.dtype == dtype

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_batchnorm_build_allocates_in_dtype(self, dtype):
        layer = BatchNormalization()
        layer.build(4, np.random.default_rng(0), dtype=dtype)
        assert layer.gamma.value.dtype == dtype
        assert layer.running_mean.dtype == dtype
        assert layer.running_var.dtype == dtype

    def test_cast_skips_matching_dtype(self):
        layer = Dense(3)
        layer.build(4, np.random.default_rng(0), dtype=np.float64)
        before = layer.weight.value
        layer.cast(np.dtype(np.float64))
        assert layer.weight.value is before  # no reallocation

    def test_build_dtype_matches_legacy_cast(self):
        """Building in float32 equals building in float64 then casting."""
        direct = Dense(3)
        direct.build(4, np.random.default_rng(5), dtype=np.float32)
        casted = Dense(3)
        casted.build(4, np.random.default_rng(5), dtype=np.float64)
        casted.cast(np.dtype(np.float32))
        assert np.array_equal(direct.weight.value, casted.weight.value)
        assert np.array_equal(direct.bias.value, casted.bias.value)


class TestEvaluateDtype:
    def test_evaluate_honours_network_dtype(self):
        """evaluate() must not silently coerce float32 nets to float64."""
        data = RNG.random((20, 6)).astype(np.float32)
        net = _make_net([4], "relu", False, False, 0, "float32", 6)
        net.fit(data, epochs=1, batch_size=8)
        pred = net.predict(data)
        assert pred.dtype == np.float32
        expected = float(np.mean((np.asarray(data, dtype=np.float32) - pred) ** 2))
        assert net.evaluate(data) == pytest.approx(expected, rel=1e-6)
