"""Initializer distribution tests."""

import math

import numpy as np
import pytest

from repro.nn.initializers import (
    get_initializer,
    glorot_normal,
    glorot_uniform,
    he_normal,
    he_uniform,
    zeros,
)

RNG = np.random.default_rng(0)


def test_glorot_uniform_bounds():
    w = glorot_uniform((100, 50), RNG)
    limit = math.sqrt(6.0 / 150)
    assert w.shape == (100, 50)
    assert np.abs(w).max() <= limit


def test_glorot_normal_std():
    w = glorot_normal((400, 400), RNG)
    expected = math.sqrt(2.0 / 800)
    assert abs(w.std() - expected) / expected < 0.1


def test_he_uniform_bounds():
    w = he_uniform((100, 10), RNG)
    assert np.abs(w).max() <= math.sqrt(6.0 / 100)


def test_he_normal_std():
    w = he_normal((500, 100), RNG)
    expected = math.sqrt(2.0 / 500)
    assert abs(w.std() - expected) / expected < 0.1


def test_zeros():
    np.testing.assert_array_equal(zeros((3, 2), RNG), np.zeros((3, 2)))


def test_registry():
    assert get_initializer("glorot_uniform") is glorot_uniform
    with pytest.raises(ValueError, match="unknown initializer"):
        get_initializer("orthogonal")


def test_reproducible_with_same_seed():
    a = glorot_uniform((4, 4), np.random.default_rng(1))
    b = glorot_uniform((4, 4), np.random.default_rng(1))
    np.testing.assert_array_equal(a, b)
